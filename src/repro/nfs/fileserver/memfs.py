"""MemFS: a flat-table in-memory file server ("vendor A").

Concrete representation: one flat node table keyed by fileid; directories map
name -> fileid in a plain dict; readdir returns entries **sorted by name**.
File handles are stable ⟨tag, fsid, fileid⟩ triples.  Timestamps have
microsecond granularity taken from the server's own (skewed) clock — a
nondeterminism the conformance wrapper must hide.

Everything lives in the ``disk`` dict, so the server state survives reboots;
the lookup cache and leaked allocations are in-core only.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.nfs.fileserver.api import Clock, NFSServer, name_error
from repro.nfs.protocol import (
    NFDIR,
    NFLNK,
    NFREG,
    NFSERR_EXIST,
    NFSERR_IO,
    NFSERR_ISDIR,
    NFSERR_NOENT,
    NFSERR_NOTDIR,
    NFSERR_NOTEMPTY,
    NFSERR_STALE,
    NFS_OK,
    Fattr,
    NfsReply,
    Sattr,
    error_reply,
)
from repro.util.errors import FaultInjected
from repro.util.xdr import XdrDecoder, XdrEncoder

_META = "memfs:meta"
_NODES = "memfs:nodes"


def _pack_handle(fsid: int, fileid: int) -> bytes:
    return XdrEncoder().pack_string("MEM").pack_u64(fsid).pack_u64(fileid).getvalue()


class MemFS(NFSServer):
    """Flat-table file server with sorted readdir."""

    def __init__(
        self,
        disk: Optional[dict] = None,
        clock: Optional[Clock] = None,
        seed: int = 0,
        clock_skew: float = 0.0,
        aging_threshold: Optional[int] = None,
    ) -> None:
        self.disk = disk if disk is not None else {}
        self._clock = clock or (lambda: 0.0)
        self._skew = clock_skew
        self._rng = random.Random(seed)
        self._aging_threshold = aging_threshold
        self._leaked = 0  # in-core only: cleared by reboot
        self._lookup_cache: Dict[Tuple[int, str], int] = {}  # in-core only

        if _META not in self.disk:
            self.disk[_META] = {
                "fsid": self._rng.randrange(1, 2**32),  # nondeterministic
                "next_fileid": self._rng.randrange(2, 1000),
            }
            self.disk[_NODES] = {}
            root_id = self._alloc_fileid()
            self._nodes()[root_id] = self._new_node(NFDIR)
            self.disk[_META]["root"] = root_id
        self.fsid = self.disk[_META]["fsid"]

    # -- internals -------------------------------------------------------------

    def _nodes(self) -> Dict[int, dict]:
        return self.disk[_NODES]

    def _alloc_fileid(self) -> int:
        fileid = self.disk[_META]["next_fileid"]
        self.disk[_META]["next_fileid"] = fileid + 1
        return fileid

    def _now(self) -> int:
        return int((self._clock() + self._skew) * 1_000_000)

    def _new_node(self, ftype: int) -> dict:
        now = self._now()
        node = {
            "type": ftype,
            "mode": 0o755 if ftype == NFDIR else 0o644,
            "uid": 0,
            "gid": 0,
            "atime": now,
            "mtime": now,
            "ctime": now,
        }
        if ftype == NFREG:
            node["data"] = b""
        elif ftype == NFDIR:
            node["entries"] = {}
        elif ftype == NFLNK:
            node["target"] = ""
        return node

    def _leak(self, amount: int) -> None:
        """Model software aging: every mutation leaks a little memory; past
        the threshold the server crashes until rebooted."""
        self._leaked += amount
        if self._aging_threshold is not None and self._leaked > self._aging_threshold:
            raise FaultInjected(f"MemFS aged out ({self._leaked} bytes leaked)")

    def _resolve(self, fh: bytes) -> Optional[int]:
        try:
            dec = XdrDecoder(fh)
            tag = dec.unpack_string()
            fsid = dec.unpack_u64()
            fileid = dec.unpack_u64()
            dec.done()
        except Exception:
            return None
        if tag != "MEM" or fsid != self.fsid:
            return None
        if fileid not in self._nodes():
            return None
        return fileid

    def _attr(self, fileid: int) -> Fattr:
        node = self._nodes()[fileid]
        if node["type"] == NFREG:
            size = len(node["data"])
        elif node["type"] == NFDIR:
            size = len(node["entries"])
        else:
            size = len(node["target"])
        return Fattr(
            ftype=node["type"],
            mode=node["mode"],
            nlink=1,
            uid=node["uid"],
            gid=node["gid"],
            size=size,
            fsid=self.fsid,
            fileid=fileid,
            atime=node["atime"],
            mtime=node["mtime"],
            ctime=node["ctime"],
        )

    def _reply(self, fileid: int, **extra) -> NfsReply:
        return NfsReply(
            status=NFS_OK, fh=_pack_handle(self.fsid, fileid), attr=self._attr(fileid), **extra
        )

    def _apply_sattr(self, fileid: int, sattr: Sattr) -> None:
        node = self._nodes()[fileid]
        if sattr.mode is not None:
            node["mode"] = sattr.mode
        if sattr.uid is not None:
            node["uid"] = sattr.uid
        if sattr.gid is not None:
            node["gid"] = sattr.gid
        if sattr.size is not None and node["type"] == NFREG:
            data = node["data"]
            if sattr.size <= len(data):
                node["data"] = data[: sattr.size]
            else:
                node["data"] = data + b"\x00" * (sattr.size - len(data))
        if sattr.atime is not None:
            node["atime"] = sattr.atime
        if sattr.mtime is not None:
            node["mtime"] = sattr.mtime
        node["ctime"] = self._now()

    # -- protocol ------------------------------------------------------------------

    def root_handle(self) -> bytes:
        return _pack_handle(self.fsid, self.disk[_META]["root"])

    def getattr(self, fh: bytes) -> NfsReply:
        fileid = self._resolve(fh)
        if fileid is None:
            return error_reply(NFSERR_STALE)
        return self._reply(fileid)

    def setattr(self, fh: bytes, sattr: Sattr) -> NfsReply:
        fileid = self._resolve(fh)
        if fileid is None:
            return error_reply(NFSERR_STALE)
        node = self._nodes()[fileid]
        if sattr.size is not None and node["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        self._leak(32)
        self._apply_sattr(fileid, sattr)
        return self._reply(fileid)

    def lookup(self, dir_fh: bytes, name: str) -> NfsReply:
        dir_id = self._resolve(dir_fh)
        if dir_id is None:
            return error_reply(NFSERR_STALE)
        node = self._nodes()[dir_id]
        if node["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        cached = self._lookup_cache.get((dir_id, name))
        if cached is not None and cached in self._nodes():
            return self._reply(cached)
        child = node["entries"].get(name)
        if child is None:
            return error_reply(NFSERR_NOENT)
        self._lookup_cache[(dir_id, name)] = child
        self._leak(16)
        return self._reply(child)

    def readlink(self, fh: bytes) -> NfsReply:
        fileid = self._resolve(fh)
        if fileid is None:
            return error_reply(NFSERR_STALE)
        node = self._nodes()[fileid]
        if node["type"] != NFLNK:
            return error_reply(NFSERR_IO)
        return NfsReply(status=NFS_OK, target=node["target"])

    def read(self, fh: bytes, offset: int, count: int) -> NfsReply:
        fileid = self._resolve(fh)
        if fileid is None:
            return error_reply(NFSERR_STALE)
        node = self._nodes()[fileid]
        if node["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if node["type"] != NFREG:
            return error_reply(NFSERR_IO)
        data = node["data"][offset : offset + count]
        node["atime"] = self._now()
        return self._reply(fileid, data=data)

    def write(self, fh: bytes, offset: int, data: bytes) -> NfsReply:
        fileid = self._resolve(fh)
        if fileid is None:
            return error_reply(NFSERR_STALE)
        node = self._nodes()[fileid]
        if node["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if node["type"] != NFREG:
            return error_reply(NFSERR_IO)
        self._leak(len(data) // 8 + 16)
        current = node["data"]
        if offset > len(current):
            current = current + b"\x00" * (offset - len(current))
        node["data"] = current[:offset] + data + current[offset + len(data) :]
        now = self._now()
        node["mtime"] = now
        node["ctime"] = now
        return self._reply(fileid)

    def _create_common(self, dir_fh: bytes, name: str, ftype: int) -> Tuple[int, Optional[NfsReply]]:
        dir_id = self._resolve(dir_fh)
        if dir_id is None:
            return 0, error_reply(NFSERR_STALE)
        node = self._nodes()[dir_id]
        if node["type"] != NFDIR:
            return 0, error_reply(NFSERR_NOTDIR)
        bad = name_error(name)
        if bad is not None:
            return 0, error_reply(bad)
        if name in node["entries"]:
            return 0, error_reply(NFSERR_EXIST)
        self._leak(64)
        child = self._alloc_fileid()
        self._nodes()[child] = self._new_node(ftype)
        node["entries"][name] = child
        now = self._now()
        node["mtime"] = now
        node["ctime"] = now
        return child, None

    def create(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFREG)
        if err is not None:
            return err
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def mkdir(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFDIR)
        if err is not None:
            return err
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def symlink(self, dir_fh: bytes, name: str, target: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFLNK)
        if err is not None:
            return err
        self._nodes()[child]["target"] = target
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def remove(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=False)

    def rmdir(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=True)

    def _unlink(self, dir_fh: bytes, name: str, want_dir: bool) -> NfsReply:
        dir_id = self._resolve(dir_fh)
        if dir_id is None:
            return error_reply(NFSERR_STALE)
        node = self._nodes()[dir_id]
        if node["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        child = node["entries"].get(name)
        if child is None:
            return error_reply(NFSERR_NOENT)
        target = self._nodes()[child]
        if want_dir:
            if target["type"] != NFDIR:
                return error_reply(NFSERR_NOTDIR)
            if target["entries"]:
                return error_reply(NFSERR_NOTEMPTY)
        else:
            if target["type"] == NFDIR:
                return error_reply(NFSERR_ISDIR)
        self._leak(32)
        del node["entries"][name]
        del self._nodes()[child]
        self._lookup_cache.pop((dir_id, name), None)
        now = self._now()
        node["mtime"] = now
        node["ctime"] = now
        return NfsReply(status=NFS_OK)

    def rename(self, from_dir: bytes, from_name: str, to_dir: bytes, to_name: str) -> NfsReply:
        src_id = self._resolve(from_dir)
        dst_id = self._resolve(to_dir)
        if src_id is None or dst_id is None:
            return error_reply(NFSERR_STALE)
        src = self._nodes()[src_id]
        dst = self._nodes()[dst_id]
        if src["type"] != NFDIR or dst["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        bad = name_error(to_name)
        if bad is not None:
            return error_reply(bad)
        moving = src["entries"].get(from_name)
        if moving is None:
            return error_reply(NFSERR_NOENT)
        existing = dst["entries"].get(to_name)
        if existing is not None and existing != moving:
            target = self._nodes()[existing]
            mover = self._nodes()[moving]
            if target["type"] == NFDIR:
                if mover["type"] != NFDIR:
                    return error_reply(NFSERR_ISDIR)
                if target["entries"]:
                    return error_reply(NFSERR_NOTEMPTY)
            elif mover["type"] == NFDIR:
                return error_reply(NFSERR_NOTDIR)
            del self._nodes()[existing]
        self._leak(48)
        del src["entries"][from_name]
        dst["entries"][to_name] = moving
        self._lookup_cache.clear()
        now = self._now()
        for d in (src, dst):
            d["mtime"] = now
            d["ctime"] = now
        return NfsReply(status=NFS_OK)

    def readdir(self, fh: bytes) -> NfsReply:
        dir_id = self._resolve(fh)
        if dir_id is None:
            return error_reply(NFSERR_STALE)
        node = self._nodes()[dir_id]
        if node["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        entries = [
            (name, _pack_handle(self.fsid, child))
            for name, child in sorted(node["entries"].items())  # this vendor sorts
        ]
        return NfsReply(status=NFS_OK, entries=entries, attr=self._attr(dir_id))

    def statfs(self, fh: bytes) -> NfsReply:
        if self._resolve(fh) is None:
            return error_reply(NFSERR_STALE)
        used = sum(
            len(n.get("data", b"")) for n in self._nodes().values()
        )
        payload = (
            XdrEncoder()
            .pack_u32(8192)
            .pack_u32(512)
            .pack_u64(1 << 20)
            .pack_u64((1 << 20) - used // 512)
            .getvalue()
        )
        return NfsReply(status=NFS_OK, data=payload)
