"""BtrFS: a copy-on-write, extent-based file server ("vendor E").

Concrete representation: file data lives in immutable *extents* keyed by
(ino, file-offset); a write never mutates an extent — it writes new extents
and bumps a per-filesystem transaction id, leaving old extents as garbage
for a lazy cleaner.  Directory entries are kept in a sorted-by-inode-number
structure, so readdir returns entries in **inode order** (creation order
with gaps), unlike every other vendor.  Timestamps tick in milliseconds.
Inode numbers start at a random point and advance by random strides.

The fifth independent implementation: the paper notes that competition
yields "four or more distinct implementations" of common services.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.nfs.fileserver.api import Clock, NFSServer, name_error
from repro.nfs.protocol import (
    NFDIR,
    NFLNK,
    NFREG,
    NFSERR_EXIST,
    NFSERR_IO,
    NFSERR_ISDIR,
    NFSERR_NOENT,
    NFSERR_NOTDIR,
    NFSERR_NOTEMPTY,
    NFSERR_STALE,
    NFS_OK,
    Fattr,
    NfsReply,
    Sattr,
    error_reply,
)
from repro.util.errors import FaultInjected
from repro.util.xdr import XdrDecoder, XdrEncoder

_SB = "btrfs:superblock"
_INODES = "btrfs:inodes"
_EXTENTS = "btrfs:extents"

EXTENT_SIZE = 4096
_CLEAN_THRESHOLD = 2048  # extents before the lazy cleaner runs


class BtrFS(NFSServer):
    """Copy-on-write extent file server with inode-order readdir."""

    def __init__(
        self,
        disk: Optional[dict] = None,
        clock: Optional[Clock] = None,
        seed: int = 0,
        clock_skew: float = 0.0,
        aging_threshold: Optional[int] = None,
    ) -> None:
        self.disk = disk if disk is not None else {}
        self._clock = clock or (lambda: 0.0)
        self._skew = clock_skew
        self._rng = random.Random(seed)
        self._aging_threshold = aging_threshold
        self._leaked = 0

        if _SB not in self.disk:
            self.disk[_SB] = {
                "fsid": self._rng.randrange(1, 2**28),
                "next_ino": self._rng.randrange(256, 512),
                "transaction": 0,
            }
            self.disk[_INODES] = {}
            self.disk[_EXTENTS] = {}  # (ino, offset) -> bytes
            root = self._alloc_inode(NFDIR)
            self.disk[_SB]["root"] = root
        self.fsid = self.disk[_SB]["fsid"]

    # -- allocation / transactions --------------------------------------------------

    def _inodes(self) -> Dict[int, dict]:
        return self.disk[_INODES]

    def _extents(self) -> Dict[Tuple[int, int], bytes]:
        return self.disk[_EXTENTS]

    def _now(self) -> int:
        micros = int((self._clock() + self._skew) * 1_000_000)
        return micros - (micros % 1000)  # millisecond granularity

    def _leak(self, amount: int) -> None:
        self._leaked += amount
        if self._aging_threshold is not None and self._leaked > self._aging_threshold:
            raise FaultInjected(f"BtrFS aged out ({self._leaked} bytes leaked)")

    def _transaction(self) -> int:
        self.disk[_SB]["transaction"] += 1
        return self.disk[_SB]["transaction"]

    def _alloc_inode(self, ftype: int) -> int:
        sb = self.disk[_SB]
        ino = sb["next_ino"]
        sb["next_ino"] = ino + self._rng.randrange(1, 4)  # gappy inode numbers
        now = self._now()
        self._inodes()[ino] = {
            "type": ftype,
            "mode": 0o755 if ftype == NFDIR else 0o644,
            "uid": 0,
            "gid": 0,
            "size": 0,
            "entries": {},  # name -> ino; readdir sorts by ino
            "target": "",
            "birth": self._transaction(),
            "atime": now,
            "mtime": now,
            "ctime": now,
        }
        return ino

    def _free_inode(self, ino: int) -> None:
        inode = self._inodes().pop(ino, None)
        if inode is None:
            return
        # Extents become garbage; the lazy cleaner reclaims them.
        self._maybe_clean()

    def _maybe_clean(self) -> None:
        extents = self._extents()
        if len(extents) < _CLEAN_THRESHOLD:
            return
        live = set(self._inodes())
        for key in [k for k in extents if k[0] not in live]:
            del extents[key]

    # -- extent-based file data -----------------------------------------------------------

    def _read_data(self, ino: int) -> bytes:
        inode = self._inodes()[ino]
        extents = self._extents()
        out = bytearray(inode["size"])
        for offset in range(0, inode["size"], EXTENT_SIZE):
            chunk = extents.get((ino, offset), b"")
            out[offset : offset + len(chunk)] = chunk
        return bytes(out[: inode["size"]])

    def _write_data(self, ino: int, data: bytes) -> None:
        """COW: write fresh extents; stale ones are cleaner's business."""
        inode = self._inodes()[ino]
        extents = self._extents()
        for offset in range(0, max(len(data), 1), EXTENT_SIZE):
            chunk = data[offset : offset + EXTENT_SIZE]
            if chunk:
                extents[(ino, offset)] = chunk
        # Truncate: remove extents past the new end.
        for key in [k for k in extents if k[0] == ino and k[1] >= len(data)]:
            del extents[key]
        inode["size"] = len(data)
        self._transaction()

    # -- handles / attrs ----------------------------------------------------------------------

    def _handle(self, ino: int) -> bytes:
        inode = self._inodes()[ino]
        return (
            XdrEncoder()
            .pack_string("BTR")
            .pack_u64(self.fsid)
            .pack_u64(ino)
            .pack_u64(inode["birth"])
            .getvalue()
        )

    def _resolve(self, fh: bytes) -> Optional[int]:
        try:
            dec = XdrDecoder(fh)
            tag = dec.unpack_string()
            fsid = dec.unpack_u64()
            ino = dec.unpack_u64()
            birth = dec.unpack_u64()
            dec.done()
        except Exception:
            return None
        if tag != "BTR" or fsid != self.fsid:
            return None
        inode = self._inodes().get(ino)
        if inode is None or inode["birth"] != birth:
            return None
        return ino

    def _attr(self, ino: int) -> Fattr:
        inode = self._inodes()[ino]
        if inode["type"] == NFREG:
            size = inode["size"]
        elif inode["type"] == NFDIR:
            size = 16384  # btrfs-style fixed directory item size
        else:
            size = len(inode["target"])
        return Fattr(
            ftype=inode["type"],
            mode=inode["mode"],
            nlink=1,
            uid=inode["uid"],
            gid=inode["gid"],
            size=size,
            fsid=self.fsid,
            fileid=ino,
            atime=inode["atime"],
            mtime=inode["mtime"],
            ctime=inode["ctime"],
        )

    def _reply(self, ino: int, **extra) -> NfsReply:
        return NfsReply(status=NFS_OK, fh=self._handle(ino), attr=self._attr(ino), **extra)

    def _apply_sattr(self, ino: int, sattr: Sattr) -> None:
        inode = self._inodes()[ino]
        if sattr.mode is not None:
            inode["mode"] = sattr.mode
        if sattr.uid is not None:
            inode["uid"] = sattr.uid
        if sattr.gid is not None:
            inode["gid"] = sattr.gid
        if sattr.size is not None and inode["type"] == NFREG:
            data = self._read_data(ino)
            if sattr.size <= len(data):
                data = data[: sattr.size]
            else:
                data = data + b"\x00" * (sattr.size - len(data))
            self._write_data(ino, data)
        if sattr.atime is not None:
            inode["atime"] = sattr.atime
        if sattr.mtime is not None:
            inode["mtime"] = sattr.mtime
        inode["ctime"] = self._now()

    # -- protocol ---------------------------------------------------------------------------------

    def root_handle(self) -> bytes:
        return self._handle(self.disk[_SB]["root"])

    def getattr(self, fh: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        return self._reply(ino)

    def setattr(self, fh: bytes, sattr: Sattr) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        if sattr.size is not None and self._inodes()[ino]["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        self._leak(20)
        self._apply_sattr(ino, sattr)
        return self._reply(ino)

    def lookup(self, dir_fh: bytes, name: str) -> NfsReply:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        child = inode["entries"].get(name)
        if child is None:
            return error_reply(NFSERR_NOENT)
        self._leak(8)
        return self._reply(child)

    def readlink(self, fh: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[ino]
        if inode["type"] != NFLNK:
            return error_reply(NFSERR_IO)
        return NfsReply(status=NFS_OK, target=inode["target"])

    def read(self, fh: bytes, offset: int, count: int) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[ino]
        if inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if inode["type"] != NFREG:
            return error_reply(NFSERR_IO)
        inode["atime"] = self._now()
        return self._reply(ino, data=self._read_data(ino)[offset : offset + count])

    def write(self, fh: bytes, offset: int, data: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[ino]
        if inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if inode["type"] != NFREG:
            return error_reply(NFSERR_IO)
        self._leak(len(data) // 14 + 10)
        current = self._read_data(ino)
        if offset > len(current):
            current = current + b"\x00" * (offset - len(current))
        self._write_data(ino, current[:offset] + data + current[offset + len(data) :])
        now = self._now()
        inode["mtime"] = now
        inode["ctime"] = now
        return self._reply(ino)

    def _create_common(self, dir_fh: bytes, name: str, ftype: int) -> Tuple[int, Optional[NfsReply]]:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return 0, error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return 0, error_reply(NFSERR_NOTDIR)
        bad = name_error(name)
        if bad is not None:
            return 0, error_reply(bad)
        if name in inode["entries"]:
            return 0, error_reply(NFSERR_EXIST)
        self._leak(44)
        child = self._alloc_inode(ftype)
        inode["entries"][name] = child
        now = self._now()
        inode["mtime"] = now
        inode["ctime"] = now
        return child, None

    def create(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFREG)
        if err is not None:
            return err
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def mkdir(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFDIR)
        if err is not None:
            return err
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def symlink(self, dir_fh: bytes, name: str, target: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFLNK)
        if err is not None:
            return err
        self._inodes()[child]["target"] = target
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def remove(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=False)

    def rmdir(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=True)

    def _unlink(self, dir_fh: bytes, name: str, want_dir: bool) -> NfsReply:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        child = inode["entries"].get(name)
        if child is None:
            return error_reply(NFSERR_NOENT)
        target = self._inodes()[child]
        if want_dir:
            if target["type"] != NFDIR:
                return error_reply(NFSERR_NOTDIR)
            if target["entries"]:
                return error_reply(NFSERR_NOTEMPTY)
        else:
            if target["type"] == NFDIR:
                return error_reply(NFSERR_ISDIR)
        self._leak(22)
        del inode["entries"][name]
        self._free_inode(child)
        now = self._now()
        inode["mtime"] = now
        inode["ctime"] = now
        return NfsReply(status=NFS_OK)

    def rename(self, from_dir: bytes, from_name: str, to_dir: bytes, to_name: str) -> NfsReply:
        src_ino = self._resolve(from_dir)
        dst_ino = self._resolve(to_dir)
        if src_ino is None or dst_ino is None:
            return error_reply(NFSERR_STALE)
        src = self._inodes()[src_ino]
        dst = self._inodes()[dst_ino]
        if src["type"] != NFDIR or dst["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        bad = name_error(to_name)
        if bad is not None:
            return error_reply(bad)
        moving = src["entries"].get(from_name)
        if moving is None:
            return error_reply(NFSERR_NOENT)
        existing = dst["entries"].get(to_name)
        if existing is not None and existing != moving:
            target = self._inodes()[existing]
            mover = self._inodes()[moving]
            if target["type"] == NFDIR:
                if mover["type"] != NFDIR:
                    return error_reply(NFSERR_ISDIR)
                if target["entries"]:
                    return error_reply(NFSERR_NOTEMPTY)
            elif mover["type"] == NFDIR:
                return error_reply(NFSERR_NOTDIR)
            del dst["entries"][to_name]
            self._free_inode(existing)
        self._leak(28)
        del src["entries"][from_name]
        dst["entries"][to_name] = moving
        now = self._now()
        for d in (src, dst):
            d["mtime"] = now
            d["ctime"] = now
        return NfsReply(status=NFS_OK)

    def readdir(self, fh: bytes) -> NfsReply:
        dir_ino = self._resolve(fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        entries = [
            (name, self._handle(child))
            for name, child in sorted(inode["entries"].items(), key=lambda kv: kv[1])
        ]  # inode-number order: creation order with random gaps
        return NfsReply(status=NFS_OK, entries=entries, attr=self._attr(dir_ino))

    def statfs(self, fh: bytes) -> NfsReply:
        if self._resolve(fh) is None:
            return error_reply(NFSERR_STALE)
        payload = (
            XdrEncoder()
            .pack_u32(8192)
            .pack_u32(EXTENT_SIZE)
            .pack_u64(1 << 24)
            .pack_u64((1 << 24) - len(self._extents()))
            .getvalue()
        )
        return NfsReply(status=NFS_OK, data=payload)
