"""The black-box interface of an "off-the-shelf" NFS file server.

Each implementation in this package is written as if by an independent
vendor: it owns its concrete representation (inode tables, logs, btrees...),
its file-handle scheme, its readdir order, its timestamp granularity, and its
nondeterministic choices.  The only thing the conformance wrapper may rely on
is this NFS-protocol interface — the paper's requirement that implementations
be treated as black boxes.

Implementations persist their state in a plain dict (the replica's "disk"),
so a simulated reboot rebuilds them from that dict alone; anything kept only
in instance attributes (caches, leaked memory, in-core corruption) is lost on
reboot, which is exactly what software rejuvenation exploits.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.nfs.protocol import (
    MAX_NAME_LEN,
    NFSERR_IO,
    NFSERR_NAMETOOLONG,
    NfsCall,
    NfsReply,
    GetattrCall,
    SetattrCall,
    LookupCall,
    ReadlinkCall,
    ReadCall,
    WriteCall,
    CreateCall,
    RemoveCall,
    RenameCall,
    SymlinkCall,
    MkdirCall,
    RmdirCall,
    ReaddirCall,
    StatfsCall,
    Sattr,
    error_reply,
)

Clock = Callable[[], float]


def name_error(name: str) -> Optional[int]:
    """Protocol-level name validation shared by all servers."""
    if len(name) > MAX_NAME_LEN:
        return NFSERR_NAMETOOLONG
    if not name or name in (".", "..") or "/" in name or "\x00" in name:
        return NFSERR_IO
    return None


class NFSServer:
    """Abstract NFS daemon: one method per protocol procedure."""

    #: Persistent filesystem id (part of the ⟨fsid, fileid⟩ object identity).
    fsid: int = 0

    def root_handle(self) -> bytes:
        raise NotImplementedError

    def getattr(self, fh: bytes) -> NfsReply:
        raise NotImplementedError

    def setattr(self, fh: bytes, sattr: Sattr) -> NfsReply:
        raise NotImplementedError

    def lookup(self, dir_fh: bytes, name: str) -> NfsReply:
        raise NotImplementedError

    def readlink(self, fh: bytes) -> NfsReply:
        raise NotImplementedError

    def read(self, fh: bytes, offset: int, count: int) -> NfsReply:
        raise NotImplementedError

    def write(self, fh: bytes, offset: int, data: bytes) -> NfsReply:
        raise NotImplementedError

    def create(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        raise NotImplementedError

    def remove(self, dir_fh: bytes, name: str) -> NfsReply:
        raise NotImplementedError

    def rename(self, from_dir: bytes, from_name: str, to_dir: bytes, to_name: str) -> NfsReply:
        raise NotImplementedError

    def symlink(self, dir_fh: bytes, name: str, target: str, sattr: Sattr) -> NfsReply:
        raise NotImplementedError

    def mkdir(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        raise NotImplementedError

    def rmdir(self, dir_fh: bytes, name: str) -> NfsReply:
        raise NotImplementedError

    def readdir(self, fh: bytes) -> NfsReply:
        raise NotImplementedError

    def statfs(self, fh: bytes) -> NfsReply:
        raise NotImplementedError

    # -- dispatch ---------------------------------------------------------------

    def call(self, request: NfsCall) -> NfsReply:
        """Route a decoded protocol call to the matching method."""
        if isinstance(request, GetattrCall):
            return self.getattr(request.fh)
        if isinstance(request, SetattrCall):
            return self.setattr(request.fh, request.sattr)
        if isinstance(request, LookupCall):
            return self.lookup(request.dir_fh, request.name)
        if isinstance(request, ReadlinkCall):
            return self.readlink(request.fh)
        if isinstance(request, ReadCall):
            return self.read(request.fh, request.offset, request.count)
        if isinstance(request, WriteCall):
            return self.write(request.fh, request.offset, request.data)
        if isinstance(request, CreateCall):
            return self.create(request.dir_fh, request.name, request.sattr)
        if isinstance(request, RemoveCall):
            return self.remove(request.dir_fh, request.name)
        if isinstance(request, RenameCall):
            return self.rename(
                request.from_dir, request.from_name, request.to_dir, request.to_name
            )
        if isinstance(request, SymlinkCall):
            return self.symlink(request.dir_fh, request.name, request.target, request.sattr)
        if isinstance(request, MkdirCall):
            return self.mkdir(request.dir_fh, request.name, request.sattr)
        if isinstance(request, RmdirCall):
            return self.rmdir(request.dir_fh, request.name)
        if isinstance(request, ReaddirCall):
            return self.readdir(request.fh)
        if isinstance(request, StatfsCall):
            return self.statfs(request.fh)
        return error_reply(NFSERR_IO)
