"""Off-the-shelf NFS file-server implementations ("vendors").

Four independently structured servers, mirroring the paper's deployment
where each replica ran a different operating system's file system:

* :class:`~repro.nfs.fileserver.memfs.MemFS`       -- flat node table,
  sorted readdir, stable handles, microsecond timestamps;
* :class:`~repro.nfs.fileserver.ext2like.Ext2FS`   -- block/inode design,
  insertion-order readdir, second-granularity timestamps;
* :class:`~repro.nfs.fileserver.ffslike.FFS`       -- cylinder-group
  allocation, hash-order readdir, salted handles;
* :class:`~repro.nfs.fileserver.loglike.LogFS`     -- log-structured,
  reverse-insertion readdir, handles that do NOT survive restarts;
* :class:`~repro.nfs.fileserver.btrfslike.BtrFS`   -- copy-on-write
  extents, inode-order readdir, millisecond timestamps, lazy cleaner.

They agree only on the NFS protocol semantics; everything else (handles,
orders, clocks, fsids, allocation) differs or is nondeterministic, which is
exactly the behaviour the conformance wrapper must mask.
"""

from repro.nfs.fileserver.api import NFSServer, name_error
from repro.nfs.fileserver.memfs import MemFS
from repro.nfs.fileserver.ext2like import Ext2FS
from repro.nfs.fileserver.ffslike import FFS
from repro.nfs.fileserver.loglike import LogFS
from repro.nfs.fileserver.btrfslike import BtrFS

VENDORS = {"memfs": MemFS, "ext2": Ext2FS, "ffs": FFS, "logfs": LogFS, "btrfs": BtrFS}

__all__ = ["NFSServer", "name_error", "MemFS", "Ext2FS", "FFS", "LogFS", "BtrFS", "VENDORS"]
