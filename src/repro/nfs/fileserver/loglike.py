"""LogFS: a log-structured file server ("vendor D").

Concrete representation: an append-only record log plus an inode map
(ino -> log position of the newest inode record).  Updates never modify old
records; they append a new inode version and bump the map.  A background-ish
compaction squeezes the log when garbage accumulates.

The properties that matter to BASE:

* **file handles do not survive restarts** — they embed a per-boot epoch, so
  every handle goes stale when the server reboots.  This is the exact
  behaviour that motivates the paper's ⟨fsid, fileid⟩→oid map (section 3.4);
* readdir returns entries **newest-first** (reverse insertion);
* timestamps are real microseconds but from this replica's skewed clock.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.nfs.fileserver.api import Clock, NFSServer, name_error
from repro.nfs.protocol import (
    NFDIR,
    NFLNK,
    NFREG,
    NFSERR_EXIST,
    NFSERR_IO,
    NFSERR_ISDIR,
    NFSERR_NOENT,
    NFSERR_NOSPC,
    NFSERR_NOTDIR,
    NFSERR_NOTEMPTY,
    NFSERR_STALE,
    NFS_OK,
    Fattr,
    NfsReply,
    Sattr,
    error_reply,
)
from repro.util.errors import FaultInjected
from repro.util.xdr import XdrDecoder, XdrEncoder

_LOG = "logfs:log"
_IMAP = "logfs:imap"
_SB = "logfs:superblock"

_COMPACT_THRESHOLD = 4096  # live/total ratio check kicks in past this length


class LogFS(NFSServer):
    """Log-structured file server with per-boot (volatile) handles."""

    def __init__(
        self,
        disk: Optional[dict] = None,
        clock: Optional[Clock] = None,
        seed: int = 0,
        clock_skew: float = 0.0,
        aging_threshold: Optional[int] = None,
    ) -> None:
        self.disk = disk if disk is not None else {}
        self._clock = clock or (lambda: 0.0)
        self._skew = clock_skew
        self._rng = random.Random(seed)
        self._aging_threshold = aging_threshold
        self._leaked = 0
        # The boot epoch changes on every restart (a persisted boot counter
        # mixed with randomness), so all handles from previous incarnations
        # are stale — as with a real NFS server restart.
        boots = self.disk.get("logfs:boots", 0) + 1
        self.disk["logfs:boots"] = boots
        self._boot_epoch = (boots * 0x9E3779B1 + self._rng.randrange(2**16)) % 2**32

        if _SB not in self.disk:
            self.disk[_SB] = {
                "fsid": self._rng.randrange(1, 2**29),
                "next_ino": self._rng.randrange(100, 200),
            }
            self.disk[_LOG] = []
            self.disk[_IMAP] = {}
            root = self._append_inode(None, NFDIR)
            self.disk[_SB]["root"] = root
        self.fsid = self.disk[_SB]["fsid"]

    # -- the log ----------------------------------------------------------------------

    def _log(self) -> List[dict]:
        return self.disk[_LOG]

    def _imap(self) -> Dict[int, int]:
        return self.disk[_IMAP]

    def _now(self) -> int:
        return int((self._clock() + self._skew) * 1_000_000)

    def _leak(self, amount: int) -> None:
        self._leaked += amount
        if self._aging_threshold is not None and self._leaked > self._aging_threshold:
            raise FaultInjected(f"LogFS aged out ({self._leaked} bytes leaked)")

    def _append_inode(self, ino: Optional[int], ftype: Optional[int] = None, base: Optional[dict] = None) -> int:
        """Write a new inode version record; returns the ino."""
        if ino is None:
            ino = self.disk[_SB]["next_ino"]
            self.disk[_SB]["next_ino"] = ino + 1
        if base is None:
            now = self._now()
            base = {
                "ino": ino,
                "type": ftype,
                "mode": 0o755 if ftype == NFDIR else 0o644,
                "uid": 0,
                "gid": 0,
                "data": b"",
                "entries": [],  # (name, ino), insertion order; readdir reverses
                "target": "",
                "atime": now,
                "mtime": now,
                "ctime": now,
                "dead": False,
            }
        record = dict(base)
        record["ino"] = ino
        self._log().append(record)
        self._imap()[ino] = len(self._log()) - 1
        self._maybe_compact()
        return ino

    def _inode(self, ino: int) -> Optional[dict]:
        position = self._imap().get(ino)
        if position is None:
            return None
        record = self._log()[position]
        if record.get("dead"):
            return None
        return record

    def _update(self, ino: int, **changes) -> dict:
        """Log-structured update: append a modified copy."""
        current = self._inode(ino)
        assert current is not None
        updated = dict(current)
        updated.update(changes)
        self._log().append(updated)
        self._imap()[ino] = len(self._log()) - 1
        self._maybe_compact()
        return updated

    def _delete(self, ino: int) -> None:
        self._update(ino, dead=True)
        del self._imap()[ino]

    def _maybe_compact(self) -> None:
        log = self._log()
        if len(log) < _COMPACT_THRESHOLD:
            return
        live_positions = set(self._imap().values())
        if len(live_positions) * 2 > len(log):
            return
        # Rewrite the log with only live records (the cleaner).
        new_log: List[dict] = []
        new_imap: Dict[int, int] = {}
        for position in sorted(live_positions):
            record = log[position]
            new_imap[record["ino"]] = len(new_log)
            new_log.append(record)
        self.disk[_LOG] = new_log
        self.disk[_IMAP] = new_imap

    # -- handles ------------------------------------------------------------------------------

    def _handle(self, ino: int) -> bytes:
        return (
            XdrEncoder()
            .pack_string("LOG")
            .pack_u32(self._boot_epoch)
            .pack_u64(ino)
            .getvalue()
        )

    def _resolve(self, fh: bytes) -> Optional[int]:
        try:
            dec = XdrDecoder(fh)
            tag = dec.unpack_string()
            epoch = dec.unpack_u32()
            ino = dec.unpack_u64()
            dec.done()
        except Exception:
            return None
        if tag != "LOG" or epoch != self._boot_epoch:
            return None  # handles from before the last reboot are stale
        if self._inode(ino) is None:
            return None
        return ino

    def _attr(self, ino: int) -> Fattr:
        inode = self._inode(ino)
        assert inode is not None
        if inode["type"] == NFREG:
            size = len(inode["data"])
        elif inode["type"] == NFDIR:
            size = len(inode["entries"])
        else:
            size = len(inode["target"])
        return Fattr(
            ftype=inode["type"],
            mode=inode["mode"],
            nlink=1,
            uid=inode["uid"],
            gid=inode["gid"],
            size=size,
            fsid=self.fsid,
            fileid=ino,
            atime=inode["atime"],
            mtime=inode["mtime"],
            ctime=inode["ctime"],
        )

    def _reply(self, ino: int, **extra) -> NfsReply:
        return NfsReply(status=NFS_OK, fh=self._handle(ino), attr=self._attr(ino), **extra)

    def _sattr_changes(self, inode: dict, sattr: Sattr) -> dict:
        changes: dict = {}
        if sattr.mode is not None:
            changes["mode"] = sattr.mode
        if sattr.uid is not None:
            changes["uid"] = sattr.uid
        if sattr.gid is not None:
            changes["gid"] = sattr.gid
        if sattr.size is not None and inode["type"] == NFREG:
            data = inode["data"]
            if sattr.size <= len(data):
                changes["data"] = data[: sattr.size]
            else:
                changes["data"] = data + b"\x00" * (sattr.size - len(data))
        if sattr.atime is not None:
            changes["atime"] = sattr.atime
        if sattr.mtime is not None:
            changes["mtime"] = sattr.mtime
        changes["ctime"] = self._now()
        return changes

    # -- protocol ----------------------------------------------------------------------------------

    def root_handle(self) -> bytes:
        return self._handle(self.disk[_SB]["root"])

    def getattr(self, fh: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        return self._reply(ino)

    def setattr(self, fh: bytes, sattr: Sattr) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inode(ino)
        if sattr.size is not None and inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        self._leak(16)
        self._update(ino, **self._sattr_changes(inode, sattr))
        return self._reply(ino)

    def lookup(self, dir_fh: bytes, name: str) -> NfsReply:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inode(dir_ino)
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        for entry_name, child in inode["entries"]:
            if entry_name == name:
                self._leak(8)
                return self._reply(child)
        return error_reply(NFSERR_NOENT)

    def readlink(self, fh: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inode(ino)
        if inode["type"] != NFLNK:
            return error_reply(NFSERR_IO)
        return NfsReply(status=NFS_OK, target=inode["target"])

    def read(self, fh: bytes, offset: int, count: int) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inode(ino)
        if inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if inode["type"] != NFREG:
            return error_reply(NFSERR_IO)
        # Log-structured purists never update atime in place; neither do we.
        return self._reply(ino, data=inode["data"][offset : offset + count])

    def write(self, fh: bytes, offset: int, data: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inode(ino)
        if inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if inode["type"] != NFREG:
            return error_reply(NFSERR_IO)
        self._leak(len(data) // 10 + 12)
        current = inode["data"]
        if offset > len(current):
            current = current + b"\x00" * (offset - len(current))
        merged = current[:offset] + data + current[offset + len(data) :]
        now = self._now()
        self._update(ino, data=merged, mtime=now, ctime=now)
        return self._reply(ino)

    def _create_common(self, dir_fh: bytes, name: str, ftype: int) -> Tuple[int, Optional[NfsReply]]:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return 0, error_reply(NFSERR_STALE)
        inode = self._inode(dir_ino)
        if inode["type"] != NFDIR:
            return 0, error_reply(NFSERR_NOTDIR)
        bad = name_error(name)
        if bad is not None:
            return 0, error_reply(bad)
        if any(entry_name == name for entry_name, _ in inode["entries"]):
            return 0, error_reply(NFSERR_EXIST)
        self._leak(40)
        child = self._append_inode(None, ftype)
        now = self._now()
        self._update(
            dir_ino,
            entries=inode["entries"] + [(name, child)],
            mtime=now,
            ctime=now,
        )
        return child, None

    def create(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFREG)
        if err is not None:
            return err
        self._update(child, **self._sattr_changes(self._inode(child), sattr))
        return self._reply(child)

    def mkdir(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFDIR)
        if err is not None:
            return err
        self._update(child, **self._sattr_changes(self._inode(child), sattr))
        return self._reply(child)

    def symlink(self, dir_fh: bytes, name: str, target: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFLNK)
        if err is not None:
            return err
        changes = self._sattr_changes(self._inode(child), sattr)
        changes["target"] = target
        self._update(child, **changes)
        return self._reply(child)

    def remove(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=False)

    def rmdir(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=True)

    def _unlink(self, dir_fh: bytes, name: str, want_dir: bool) -> NfsReply:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inode(dir_ino)
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        child = None
        for entry_name, entry_ino in inode["entries"]:
            if entry_name == name:
                child = entry_ino
                break
        if child is None:
            return error_reply(NFSERR_NOENT)
        target = self._inode(child)
        if want_dir:
            if target["type"] != NFDIR:
                return error_reply(NFSERR_NOTDIR)
            if target["entries"]:
                return error_reply(NFSERR_NOTEMPTY)
        else:
            if target["type"] == NFDIR:
                return error_reply(NFSERR_ISDIR)
        self._leak(24)
        now = self._now()
        self._update(
            dir_ino,
            entries=[(n, c) for n, c in inode["entries"] if n != name],
            mtime=now,
            ctime=now,
        )
        self._delete(child)
        return NfsReply(status=NFS_OK)

    def rename(self, from_dir: bytes, from_name: str, to_dir: bytes, to_name: str) -> NfsReply:
        src_ino = self._resolve(from_dir)
        dst_ino = self._resolve(to_dir)
        if src_ino is None or dst_ino is None:
            return error_reply(NFSERR_STALE)
        src = self._inode(src_ino)
        dst = self._inode(dst_ino)
        if src["type"] != NFDIR or dst["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        bad = name_error(to_name)
        if bad is not None:
            return error_reply(bad)
        moving = None
        for entry_name, entry_ino in src["entries"]:
            if entry_name == from_name:
                moving = entry_ino
                break
        if moving is None:
            return error_reply(NFSERR_NOENT)
        existing = None
        for entry_name, entry_ino in dst["entries"]:
            if entry_name == to_name:
                existing = entry_ino
                break
        if existing is not None and existing != moving:
            target = self._inode(existing)
            mover = self._inode(moving)
            if target["type"] == NFDIR:
                if mover["type"] != NFDIR:
                    return error_reply(NFSERR_ISDIR)
                if target["entries"]:
                    return error_reply(NFSERR_NOTEMPTY)
            elif mover["type"] == NFDIR:
                return error_reply(NFSERR_NOTDIR)
            self._delete(existing)
            dst = self._inode(dst_ino)  # re-read: _delete appended records
        self._leak(32)
        now = self._now()
        if src_ino == dst_ino:
            entries = [(n, c) for n, c in src["entries"] if n not in (from_name, to_name)]
            entries.append((to_name, moving))
            self._update(src_ino, entries=entries, mtime=now, ctime=now)
        else:
            self._update(
                src_ino,
                entries=[(n, c) for n, c in src["entries"] if n != from_name],
                mtime=now,
                ctime=now,
            )
            dst = self._inode(dst_ino)
            self._update(
                dst_ino,
                entries=[(n, c) for n, c in dst["entries"] if n != to_name] + [(to_name, moving)],
                mtime=now,
                ctime=now,
            )
        return NfsReply(status=NFS_OK)

    def readdir(self, fh: bytes) -> NfsReply:
        dir_ino = self._resolve(fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inode(dir_ino)
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        entries = [
            (name, self._handle(child))
            for name, child in reversed(inode["entries"])  # newest first
        ]
        return NfsReply(status=NFS_OK, entries=entries, attr=self._attr(dir_ino))

    def statfs(self, fh: bytes) -> NfsReply:
        if self._resolve(fh) is None:
            return error_reply(NFSERR_STALE)
        payload = (
            XdrEncoder()
            .pack_u32(8192)
            .pack_u32(4096)
            .pack_u64(1 << 22)
            .pack_u64((1 << 22) - len(self._log()))
            .getvalue()
        )
        return NfsReply(status=NFS_OK, data=payload)
