"""Ext2FS: a block/inode file server ("vendor B").

Concrete representation: a fixed inode table with first-free allocation and
**inode reuse** (generation numbers bump on reuse, as in real ext2), file
data in 512-byte blocks allocated first-fit from a bitmap, directories as
insertion-ordered entry lists.  readdir returns **insertion order**;
timestamps have **one-second granularity**; handles embed
⟨fsid, inode, generation⟩.

The deliberate contrasts with the other vendors — coarser timestamps, inode
reuse, unsorted readdir, block-granular sizes — are exactly the concrete
differences the conformance wrapper has to hide.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.nfs.fileserver.api import Clock, NFSServer, name_error
from repro.nfs.protocol import (
    NFDIR,
    NFLNK,
    NFREG,
    NFSERR_EXIST,
    NFSERR_IO,
    NFSERR_ISDIR,
    NFSERR_NOENT,
    NFSERR_NOSPC,
    NFSERR_NOTDIR,
    NFSERR_NOTEMPTY,
    NFSERR_STALE,
    NFS_OK,
    Fattr,
    NfsReply,
    Sattr,
    error_reply,
)
from repro.util.errors import FaultInjected
from repro.util.xdr import XdrDecoder, XdrEncoder

_SB = "ext2:superblock"
_INODES = "ext2:inodes"
_BLOCKS = "ext2:blocks"

BLOCK_SIZE = 512


def _pack_handle(fsid: int, ino: int, generation: int) -> bytes:
    return (
        XdrEncoder()
        .pack_string("EXT2")
        .pack_u64(fsid)
        .pack_u32(ino)
        .pack_u32(generation)
        .getvalue()
    )


class Ext2FS(NFSServer):
    """Block/inode file server with inode reuse and 1-second timestamps."""

    def __init__(
        self,
        disk: Optional[dict] = None,
        clock: Optional[Clock] = None,
        seed: int = 0,
        clock_skew: float = 0.0,
        aging_threshold: Optional[int] = None,
        num_inodes: int = 4096,
        num_blocks: int = 65536,
    ) -> None:
        self.disk = disk if disk is not None else {}
        self._clock = clock or (lambda: 0.0)
        self._skew = clock_skew
        self._rng = random.Random(seed)
        self._aging_threshold = aging_threshold
        self._leaked = 0  # in-core; cleared on reboot

        if _SB not in self.disk:
            self.disk[_SB] = {
                "fsid": self._rng.randrange(1, 2**31),
                "num_inodes": num_inodes,
                "num_blocks": num_blocks,
                "free_blocks": list(range(num_blocks)),
            }
            self.disk[_INODES] = {}
            self.disk[_BLOCKS] = {}
            self._make_inode(NFDIR)  # ino 0 becomes the root
        self.fsid = self.disk[_SB]["fsid"]

    # -- low-level allocation -------------------------------------------------------

    def _inodes(self) -> Dict[int, dict]:
        return self.disk[_INODES]

    def _blocks(self) -> Dict[int, bytes]:
        return self.disk[_BLOCKS]

    def _now(self) -> int:
        # One-second granularity, expressed in microseconds.
        return int(self._clock() + self._skew) * 1_000_000

    def _leak(self, amount: int) -> None:
        self._leaked += amount
        if self._aging_threshold is not None and self._leaked > self._aging_threshold:
            raise FaultInjected(f"Ext2FS aged out ({self._leaked} bytes leaked)")

    def _make_inode(self, ftype: int) -> int:
        """First-free inode allocation with generation bump on reuse."""
        table = self._inodes()
        sb = self.disk[_SB]
        ino = None
        for candidate in range(sb["num_inodes"]):
            entry = table.get(candidate)
            if entry is None or entry.get("free", False):
                ino = candidate
                break
        if ino is None:
            raise MemoryError("inode table full")
        previous = table.get(ino)
        generation = (previous["generation"] + 1) if previous else 1
        now = self._now()
        table[ino] = {
            "free": False,
            "generation": generation,
            "type": ftype,
            "mode": 0o755 if ftype == NFDIR else 0o644,
            "uid": 0,
            "gid": 0,
            "size": 0,
            "blocks": [],
            "entries": [],  # directories: insertion-ordered (name, ino)
            "target": "",
            "atime": now,
            "mtime": now,
            "ctime": now,
        }
        return ino

    def _free_inode(self, ino: int) -> None:
        inode = self._inodes()[ino]
        for block in inode["blocks"]:
            self._blocks().pop(block, None)
            self.disk[_SB]["free_blocks"].append(block)
        inode["blocks"] = []
        inode["entries"] = []
        inode["free"] = True

    def _alloc_block(self) -> Optional[int]:
        free = self.disk[_SB]["free_blocks"]
        if not free:
            return None
        free.sort()  # first-fit
        return free.pop(0)

    # -- file data as blocks ----------------------------------------------------------

    def _read_data(self, inode: dict) -> bytes:
        blocks = self._blocks()
        raw = b"".join(blocks.get(b, b"\x00" * BLOCK_SIZE) for b in inode["blocks"])
        return raw[: inode["size"]]

    def _write_data(self, inode: dict, data: bytes) -> bool:
        blocks = self._blocks()
        for block in inode["blocks"]:
            blocks.pop(block, None)
            self.disk[_SB]["free_blocks"].append(block)
        inode["blocks"] = []
        for start in range(0, len(data), BLOCK_SIZE):
            block = self._alloc_block()
            if block is None:
                inode["size"] = 0
                return False
            blocks[block] = data[start : start + BLOCK_SIZE]
            inode["blocks"].append(block)
        inode["size"] = len(data)
        return True

    # -- handles -------------------------------------------------------------------------

    def _resolve(self, fh: bytes) -> Optional[int]:
        try:
            dec = XdrDecoder(fh)
            tag = dec.unpack_string()
            fsid = dec.unpack_u64()
            ino = dec.unpack_u32()
            generation = dec.unpack_u32()
            dec.done()
        except Exception:
            return None
        if tag != "EXT2" or fsid != self.fsid:
            return None
        inode = self._inodes().get(ino)
        if inode is None or inode.get("free") or inode["generation"] != generation:
            return None
        return ino

    def _handle(self, ino: int) -> bytes:
        return _pack_handle(self.fsid, ino, self._inodes()[ino]["generation"])

    def _attr(self, ino: int) -> Fattr:
        inode = self._inodes()[ino]
        if inode["type"] == NFREG:
            size = inode["size"]
        elif inode["type"] == NFDIR:
            size = max(BLOCK_SIZE, len(inode["entries"]) * 32)  # block-ish dir size
        else:
            size = len(inode["target"])
        return Fattr(
            ftype=inode["type"],
            mode=inode["mode"],
            nlink=1,
            uid=inode["uid"],
            gid=inode["gid"],
            size=size,
            fsid=self.fsid,
            fileid=ino,
            atime=inode["atime"],
            mtime=inode["mtime"],
            ctime=inode["ctime"],
        )

    def _reply(self, ino: int, **extra) -> NfsReply:
        return NfsReply(status=NFS_OK, fh=self._handle(ino), attr=self._attr(ino), **extra)

    def _dir_find(self, inode: dict, name: str) -> Optional[int]:
        for entry_name, child in inode["entries"]:
            if entry_name == name:
                return child
        return None

    def _apply_sattr(self, ino: int, sattr: Sattr) -> bool:
        inode = self._inodes()[ino]
        if sattr.mode is not None:
            inode["mode"] = sattr.mode
        if sattr.uid is not None:
            inode["uid"] = sattr.uid
        if sattr.gid is not None:
            inode["gid"] = sattr.gid
        if sattr.size is not None and inode["type"] == NFREG:
            data = self._read_data(inode)
            if sattr.size <= len(data):
                data = data[: sattr.size]
            else:
                data = data + b"\x00" * (sattr.size - len(data))
            if not self._write_data(inode, data):
                return False
        if sattr.atime is not None:
            inode["atime"] = sattr.atime
        if sattr.mtime is not None:
            inode["mtime"] = sattr.mtime
        inode["ctime"] = self._now()
        return True

    # -- protocol --------------------------------------------------------------------------

    def root_handle(self) -> bytes:
        return self._handle(0)

    def getattr(self, fh: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        return self._reply(ino)

    def setattr(self, fh: bytes, sattr: Sattr) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[ino]
        if sattr.size is not None and inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        self._leak(24)
        if not self._apply_sattr(ino, sattr):
            return error_reply(NFSERR_NOSPC)
        return self._reply(ino)

    def lookup(self, dir_fh: bytes, name: str) -> NfsReply:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        child = self._dir_find(inode, name)
        if child is None:
            return error_reply(NFSERR_NOENT)
        self._leak(8)
        return self._reply(child)

    def readlink(self, fh: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[ino]
        if inode["type"] != NFLNK:
            return error_reply(NFSERR_IO)
        return NfsReply(status=NFS_OK, target=inode["target"])

    def read(self, fh: bytes, offset: int, count: int) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[ino]
        if inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if inode["type"] != NFREG:
            return error_reply(NFSERR_IO)
        data = self._read_data(inode)[offset : offset + count]
        inode["atime"] = self._now()
        return self._reply(ino, data=data)

    def write(self, fh: bytes, offset: int, data: bytes) -> NfsReply:
        ino = self._resolve(fh)
        if ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[ino]
        if inode["type"] == NFDIR:
            return error_reply(NFSERR_ISDIR)
        if inode["type"] != NFREG:
            return error_reply(NFSERR_IO)
        self._leak(len(data) // 16 + 8)
        current = self._read_data(inode)
        if offset > len(current):
            current = current + b"\x00" * (offset - len(current))
        merged = current[:offset] + data + current[offset + len(data) :]
        if not self._write_data(inode, merged):
            return error_reply(NFSERR_NOSPC)
        now = self._now()
        inode["mtime"] = now
        inode["ctime"] = now
        return self._reply(ino)

    def _create_common(self, dir_fh: bytes, name: str, ftype: int) -> Tuple[int, Optional[NfsReply]]:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return 0, error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return 0, error_reply(NFSERR_NOTDIR)
        bad = name_error(name)
        if bad is not None:
            return 0, error_reply(bad)
        if self._dir_find(inode, name) is not None:
            return 0, error_reply(NFSERR_EXIST)
        self._leak(48)
        try:
            child = self._make_inode(ftype)
        except MemoryError:
            return 0, error_reply(NFSERR_NOSPC)
        inode["entries"].append((name, child))  # insertion order
        now = self._now()
        inode["mtime"] = now
        inode["ctime"] = now
        return child, None

    def create(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFREG)
        if err is not None:
            return err
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def mkdir(self, dir_fh: bytes, name: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFDIR)
        if err is not None:
            return err
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def symlink(self, dir_fh: bytes, name: str, target: str, sattr: Sattr) -> NfsReply:
        child, err = self._create_common(dir_fh, name, NFLNK)
        if err is not None:
            return err
        self._inodes()[child]["target"] = target
        self._apply_sattr(child, sattr)
        return self._reply(child)

    def remove(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=False)

    def rmdir(self, dir_fh: bytes, name: str) -> NfsReply:
        return self._unlink(dir_fh, name, want_dir=True)

    def _unlink(self, dir_fh: bytes, name: str, want_dir: bool) -> NfsReply:
        dir_ino = self._resolve(dir_fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        child = self._dir_find(inode, name)
        if child is None:
            return error_reply(NFSERR_NOENT)
        target = self._inodes()[child]
        if want_dir:
            if target["type"] != NFDIR:
                return error_reply(NFSERR_NOTDIR)
            if target["entries"]:
                return error_reply(NFSERR_NOTEMPTY)
        else:
            if target["type"] == NFDIR:
                return error_reply(NFSERR_ISDIR)
        self._leak(24)
        inode["entries"] = [(n, c) for n, c in inode["entries"] if n != name]
        self._free_inode(child)
        now = self._now()
        inode["mtime"] = now
        inode["ctime"] = now
        return NfsReply(status=NFS_OK)

    def rename(self, from_dir: bytes, from_name: str, to_dir: bytes, to_name: str) -> NfsReply:
        src_ino = self._resolve(from_dir)
        dst_ino = self._resolve(to_dir)
        if src_ino is None or dst_ino is None:
            return error_reply(NFSERR_STALE)
        src = self._inodes()[src_ino]
        dst = self._inodes()[dst_ino]
        if src["type"] != NFDIR or dst["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        bad = name_error(to_name)
        if bad is not None:
            return error_reply(bad)
        moving = self._dir_find(src, from_name)
        if moving is None:
            return error_reply(NFSERR_NOENT)
        existing = self._dir_find(dst, to_name)
        if existing is not None and existing != moving:
            target = self._inodes()[existing]
            mover = self._inodes()[moving]
            if target["type"] == NFDIR:
                if mover["type"] != NFDIR:
                    return error_reply(NFSERR_ISDIR)
                if target["entries"]:
                    return error_reply(NFSERR_NOTEMPTY)
            elif mover["type"] == NFDIR:
                return error_reply(NFSERR_NOTDIR)
            dst["entries"] = [(n, c) for n, c in dst["entries"] if n != to_name]
            self._free_inode(existing)
        self._leak(32)
        src["entries"] = [(n, c) for n, c in src["entries"] if n != from_name]
        dst["entries"].append((to_name, moving))
        now = self._now()
        for d in (src, dst):
            d["mtime"] = now
            d["ctime"] = now
        return NfsReply(status=NFS_OK)

    def readdir(self, fh: bytes) -> NfsReply:
        dir_ino = self._resolve(fh)
        if dir_ino is None:
            return error_reply(NFSERR_STALE)
        inode = self._inodes()[dir_ino]
        if inode["type"] != NFDIR:
            return error_reply(NFSERR_NOTDIR)
        entries = [
            (name, self._handle(child)) for name, child in inode["entries"]
        ]  # insertion order, this vendor never sorts
        return NfsReply(status=NFS_OK, entries=entries, attr=self._attr(dir_ino))

    def statfs(self, fh: bytes) -> NfsReply:
        if self._resolve(fh) is None:
            return error_reply(NFSERR_STALE)
        sb = self.disk[_SB]
        payload = (
            XdrEncoder()
            .pack_u32(8192)
            .pack_u32(BLOCK_SIZE)
            .pack_u64(sb["num_blocks"])
            .pack_u64(len(sb["free_blocks"]))
            .getvalue()
        )
        return NfsReply(status=NFS_OK, data=payload)
