"""The replicated file service example (paper section 3).

* :mod:`repro.nfs.protocol`   -- NFS-protocol structures (RFC 1094 subset):
  fattr/sattr, call/reply encodings, status codes;
* :mod:`repro.nfs.fileserver` -- four distinct "off-the-shelf" file-system
  implementations with different concrete representations, file-handle
  schemes, readdir orders, timestamp granularities, and nondeterminism;
* :mod:`repro.nfs.spec`       -- the common abstract specification: the
  abstract state as a fixed array of (object, generation) pairs, oids,
  XDR object encodings, deterministic oid assignment;
* :mod:`repro.nfs.wrapper`    -- the conformance wrapper (handle translation,
  abstract timestamps, lexicographic readdir) and the state conversion
  functions (abstraction function + inverse);
* :mod:`repro.nfs.relay`      -- the user-level relay between an NFS client
  and the replicated service;
* :mod:`repro.nfs.client`     -- a POSIX-ish client facade used by examples
  and benchmarks;
* :mod:`repro.nfs.direct`     -- the unreplicated baseline (client talks to
  one implementation directly), used for the Andrew-benchmark comparison.
"""
