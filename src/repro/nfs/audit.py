"""Abstract-state auditing.

Operational tooling an operator of a BASE deployment would want: compare the
abstract states of two replicas object-by-object, decode the differences
into human-readable form, and verify a single wrapper's internal consistency
(rep ↔ concrete state).  Tests and examples use it; the fault-injection
benchmarks use it to localize corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.nfs.conversion import abstraction_function
from repro.nfs.protocol import NFDIR, NFNON, NFREG, TYPE_NAMES
from repro.nfs.spec import AbstractObject, parse_oid
from repro.nfs.wrapper import NFSConformanceWrapper


@dataclass
class ObjectDiff:
    """One differing abstract array entry."""

    index: int
    left: AbstractObject
    right: AbstractObject

    def describe(self) -> str:
        left_type = TYPE_NAMES.get(self.left.ftype, "?")
        right_type = TYPE_NAMES.get(self.right.ftype, "?")
        parts = [f"object {self.index}:"]
        if self.left.ftype != self.right.ftype:
            parts.append(f"type {left_type} vs {right_type}")
        if self.left.generation != self.right.generation:
            parts.append(
                f"generation {self.left.generation} vs {self.right.generation}"
            )
        if self.left.ftype == self.right.ftype == NFREG and self.left.data != self.right.data:
            parts.append(f"data {len(self.left.data)}B vs {len(self.right.data)}B")
        if self.left.ftype == self.right.ftype == NFDIR and self.left.entries != self.right.entries:
            left_names = {name for name, _ in self.left.entries}
            right_names = {name for name, _ in self.right.entries}
            only_left = left_names - right_names
            only_right = right_names - left_names
            if only_left:
                parts.append(f"entries only in left: {sorted(only_left)}")
            if only_right:
                parts.append(f"entries only in right: {sorted(only_right)}")
            if not only_left and not only_right:
                parts.append("entries rebound to different oids")
        if self.left.meta != self.right.meta:
            parts.append("metadata differs")
        return " ".join(parts)


def diff_wrappers(
    left: NFSConformanceWrapper, right: NFSConformanceWrapper
) -> List[ObjectDiff]:
    """Object-level differences between two replicas' abstract states."""
    if left.spec.num_objects != right.spec.num_objects:
        raise ValueError("wrappers follow different abstract specifications")
    diffs: List[ObjectDiff] = []
    for index in range(left.spec.num_objects):
        left_blob = abstraction_function(left, index)
        right_blob = abstraction_function(right, index)
        if left_blob != right_blob:
            diffs.append(
                ObjectDiff(
                    index=index,
                    left=AbstractObject.decode(left_blob),
                    right=AbstractObject.decode(right_blob),
                )
            )
    return diffs


@dataclass
class AuditReport:
    """Internal-consistency findings for one wrapper."""

    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def audit_wrapper(wrapper: NFSConformanceWrapper) -> AuditReport:
    """Check the conformance rep against the abstract state it produces.

    Verifies referential integrity (every directory entry points at a live
    entry with a matching generation), reachability (every allocated entry
    is linked somewhere, directly or transitively from the root), and map
    consistency (fh↔index round-trips).
    """
    report = AuditReport()
    objects: Dict[int, AbstractObject] = {}
    for index in range(wrapper.spec.num_objects):
        objects[index] = AbstractObject.decode(abstraction_function(wrapper, index))

    # Referential integrity.
    referenced: Dict[int, int] = {}
    for index, obj in objects.items():
        if obj.ftype != NFDIR:
            continue
        for name, oid in obj.entries:
            child_index, child_gen = parse_oid(oid)
            child = objects.get(child_index)
            if child is None or child.ftype == NFNON:
                report.problems.append(
                    f"dir {index} entry {name!r} points at free entry {child_index}"
                )
            elif child.generation != child_gen:
                report.problems.append(
                    f"dir {index} entry {name!r} has stale generation for {child_index}"
                )
            referenced[child_index] = referenced.get(child_index, 0) + 1

    # Single-parent tree invariant (no hard links in the spec).
    for index, count in referenced.items():
        if count > 1:
            report.problems.append(f"object {index} linked {count} times")

    # Reachability: every allocated non-root object is referenced.
    for index, obj in objects.items():
        if index == 0 or obj.ftype == NFNON:
            continue
        if index not in referenced:
            report.problems.append(f"object {index} is allocated but orphaned")

    # Map consistency.
    for fh, index in wrapper.fh_to_index.items():
        entry = wrapper.entries[index]
        if entry.fh != fh:
            report.problems.append(f"fh map points at index {index} with different fh")
    return report
