"""NFS protocol structures (subset of RFC 1094, NFS version 2).

These are the *on-the-wire* types shared by every party: the client façade,
the relay, the conformance wrapper, and the file-system implementations.  In
the replicated service the file handles inside calls and replies are oids
(abstract object identifiers); when talking directly to an implementation
they are whatever opaque handle that implementation chose — the protocol
layer does not care.

Calls and replies have canonical XDR encodings because they travel through
the BFT library as request/result byte strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.util.xdr import XdrDecoder, XdrEncoder

# --- status codes (RFC 1094 section 2.2.6) -------------------------------------

NFS_OK = 0
NFSERR_PERM = 1
NFSERR_NOENT = 2
NFSERR_IO = 5
NFSERR_EXIST = 17
NFSERR_NOTDIR = 20
NFSERR_ISDIR = 21
NFSERR_FBIG = 27
NFSERR_NOSPC = 28
NFSERR_ROFS = 30
NFSERR_NAMETOOLONG = 63
NFSERR_NOTEMPTY = 66
NFSERR_STALE = 70

STATUS_NAMES = {
    NFS_OK: "NFS_OK",
    NFSERR_PERM: "NFSERR_PERM",
    NFSERR_NOENT: "NFSERR_NOENT",
    NFSERR_IO: "NFSERR_IO",
    NFSERR_EXIST: "NFSERR_EXIST",
    NFSERR_NOTDIR: "NFSERR_NOTDIR",
    NFSERR_ISDIR: "NFSERR_ISDIR",
    NFSERR_FBIG: "NFSERR_FBIG",
    NFSERR_NOSPC: "NFSERR_NOSPC",
    NFSERR_ROFS: "NFSERR_ROFS",
    NFSERR_NAMETOOLONG: "NFSERR_NAMETOOLONG",
    NFSERR_NOTEMPTY: "NFSERR_NOTEMPTY",
    NFSERR_STALE: "NFSERR_STALE",
}

MAX_NAME_LEN = 255
MAX_DATA = 8192  # NFSv2 transfer size

# --- file types ------------------------------------------------------------------

NFNON = 0
NFREG = 1
NFDIR = 2
NFLNK = 5

TYPE_NAMES = {NFNON: "NFNON", NFREG: "NFREG", NFDIR: "NFDIR", NFLNK: "NFLNK"}

_DONT_SET = 0xFFFFFFFF
_DONT_SET64 = 0xFFFFFFFFFFFFFFFF


@dataclass
class Fattr:
    """File attributes (RFC 1094 fattr, times as integer microseconds)."""

    ftype: int = NFNON
    mode: int = 0
    nlink: int = 1
    uid: int = 0
    gid: int = 0
    size: int = 0
    fsid: int = 0
    fileid: int = 0
    atime: int = 0
    mtime: int = 0
    ctime: int = 0

    def pack(self, enc: XdrEncoder) -> None:
        enc.pack_u32(self.ftype).pack_u32(self.mode).pack_u32(self.nlink)
        enc.pack_u32(self.uid).pack_u32(self.gid).pack_u64(self.size)
        enc.pack_u64(self.fsid).pack_u64(self.fileid)
        enc.pack_u64(self.atime).pack_u64(self.mtime).pack_u64(self.ctime)

    @classmethod
    def unpack(cls, dec: XdrDecoder) -> "Fattr":
        return cls(
            ftype=dec.unpack_u32(),
            mode=dec.unpack_u32(),
            nlink=dec.unpack_u32(),
            uid=dec.unpack_u32(),
            gid=dec.unpack_u32(),
            size=dec.unpack_u64(),
            fsid=dec.unpack_u64(),
            fileid=dec.unpack_u64(),
            atime=dec.unpack_u64(),
            mtime=dec.unpack_u64(),
            ctime=dec.unpack_u64(),
        )


@dataclass
class Sattr:
    """Settable attributes; ``None`` fields are left unchanged."""

    mode: Optional[int] = None
    uid: Optional[int] = None
    gid: Optional[int] = None
    size: Optional[int] = None
    atime: Optional[int] = None
    mtime: Optional[int] = None

    def pack(self, enc: XdrEncoder) -> None:
        enc.pack_u32(_DONT_SET if self.mode is None else self.mode)
        enc.pack_u32(_DONT_SET if self.uid is None else self.uid)
        enc.pack_u32(_DONT_SET if self.gid is None else self.gid)
        enc.pack_u64(_DONT_SET64 if self.size is None else self.size)
        enc.pack_u64(_DONT_SET64 if self.atime is None else self.atime)
        enc.pack_u64(_DONT_SET64 if self.mtime is None else self.mtime)

    @classmethod
    def unpack(cls, dec: XdrDecoder) -> "Sattr":
        def opt32(value: int) -> Optional[int]:
            return None if value == _DONT_SET else value

        def opt64(value: int) -> Optional[int]:
            return None if value == _DONT_SET64 else value

        return cls(
            mode=opt32(dec.unpack_u32()),
            uid=opt32(dec.unpack_u32()),
            gid=opt32(dec.unpack_u32()),
            size=opt64(dec.unpack_u64()),
            atime=opt64(dec.unpack_u64()),
            mtime=opt64(dec.unpack_u64()),
        )


# --- calls -------------------------------------------------------------------------

_CALL_REGISTRY: Dict[int, Type["NfsCall"]] = {}


def _register(proc: int):
    def wrap(cls):
        cls.PROC = proc
        _CALL_REGISTRY[proc] = cls
        return cls

    return wrap


@dataclass
class NfsCall:
    """Base class for protocol calls."""

    PROC = -1

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_u32(self.PROC)
        self._pack_args(enc)
        return enc.getvalue()

    def _pack_args(self, enc: XdrEncoder) -> None:
        raise NotImplementedError

    @classmethod
    def _unpack_args(cls, dec: XdrDecoder) -> "NfsCall":
        raise NotImplementedError

    @staticmethod
    def decode(data: bytes) -> "NfsCall":
        dec = XdrDecoder(data)
        proc = dec.unpack_u32()
        cls = _CALL_REGISTRY.get(proc)
        if cls is None:
            raise ValueError(f"unknown NFS procedure {proc}")
        call = cls._unpack_args(dec)
        dec.done()
        return call

    @property
    def is_read_only(self) -> bool:
        return self.PROC in _READ_ONLY_PROCS


@_register(1)
@dataclass
class GetattrCall(NfsCall):
    fh: bytes = b""

    def _pack_args(self, enc):
        enc.pack_opaque(self.fh)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(fh=dec.unpack_opaque())


@_register(2)
@dataclass
class SetattrCall(NfsCall):
    fh: bytes = b""
    sattr: Sattr = field(default_factory=Sattr)

    def _pack_args(self, enc):
        enc.pack_opaque(self.fh)
        self.sattr.pack(enc)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(fh=dec.unpack_opaque(), sattr=Sattr.unpack(dec))


@_register(4)
@dataclass
class LookupCall(NfsCall):
    dir_fh: bytes = b""
    name: str = ""

    def _pack_args(self, enc):
        enc.pack_opaque(self.dir_fh)
        enc.pack_string(self.name)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(dir_fh=dec.unpack_opaque(), name=dec.unpack_string())


@_register(5)
@dataclass
class ReadlinkCall(NfsCall):
    fh: bytes = b""

    def _pack_args(self, enc):
        enc.pack_opaque(self.fh)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(fh=dec.unpack_opaque())


@_register(6)
@dataclass
class ReadCall(NfsCall):
    fh: bytes = b""
    offset: int = 0
    count: int = 0

    def _pack_args(self, enc):
        enc.pack_opaque(self.fh)
        enc.pack_u64(self.offset)
        enc.pack_u32(self.count)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(fh=dec.unpack_opaque(), offset=dec.unpack_u64(), count=dec.unpack_u32())


@_register(8)
@dataclass
class WriteCall(NfsCall):
    fh: bytes = b""
    offset: int = 0
    data: bytes = b""

    def _pack_args(self, enc):
        enc.pack_opaque(self.fh)
        enc.pack_u64(self.offset)
        enc.pack_opaque(self.data)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(fh=dec.unpack_opaque(), offset=dec.unpack_u64(), data=dec.unpack_opaque())


@_register(9)
@dataclass
class CreateCall(NfsCall):
    dir_fh: bytes = b""
    name: str = ""
    sattr: Sattr = field(default_factory=Sattr)

    def _pack_args(self, enc):
        enc.pack_opaque(self.dir_fh)
        enc.pack_string(self.name)
        self.sattr.pack(enc)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(dir_fh=dec.unpack_opaque(), name=dec.unpack_string(), sattr=Sattr.unpack(dec))


@_register(10)
@dataclass
class RemoveCall(NfsCall):
    dir_fh: bytes = b""
    name: str = ""

    def _pack_args(self, enc):
        enc.pack_opaque(self.dir_fh)
        enc.pack_string(self.name)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(dir_fh=dec.unpack_opaque(), name=dec.unpack_string())


@_register(11)
@dataclass
class RenameCall(NfsCall):
    from_dir: bytes = b""
    from_name: str = ""
    to_dir: bytes = b""
    to_name: str = ""

    def _pack_args(self, enc):
        enc.pack_opaque(self.from_dir)
        enc.pack_string(self.from_name)
        enc.pack_opaque(self.to_dir)
        enc.pack_string(self.to_name)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(
            from_dir=dec.unpack_opaque(),
            from_name=dec.unpack_string(),
            to_dir=dec.unpack_opaque(),
            to_name=dec.unpack_string(),
        )


@_register(13)
@dataclass
class SymlinkCall(NfsCall):
    dir_fh: bytes = b""
    name: str = ""
    target: str = ""
    sattr: Sattr = field(default_factory=Sattr)

    def _pack_args(self, enc):
        enc.pack_opaque(self.dir_fh)
        enc.pack_string(self.name)
        enc.pack_string(self.target)
        self.sattr.pack(enc)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(
            dir_fh=dec.unpack_opaque(),
            name=dec.unpack_string(),
            target=dec.unpack_string(),
            sattr=Sattr.unpack(dec),
        )


@_register(14)
@dataclass
class MkdirCall(NfsCall):
    dir_fh: bytes = b""
    name: str = ""
    sattr: Sattr = field(default_factory=Sattr)

    def _pack_args(self, enc):
        enc.pack_opaque(self.dir_fh)
        enc.pack_string(self.name)
        self.sattr.pack(enc)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(dir_fh=dec.unpack_opaque(), name=dec.unpack_string(), sattr=Sattr.unpack(dec))


@_register(15)
@dataclass
class RmdirCall(NfsCall):
    dir_fh: bytes = b""
    name: str = ""

    def _pack_args(self, enc):
        enc.pack_opaque(self.dir_fh)
        enc.pack_string(self.name)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(dir_fh=dec.unpack_opaque(), name=dec.unpack_string())


@_register(16)
@dataclass
class ReaddirCall(NfsCall):
    fh: bytes = b""

    def _pack_args(self, enc):
        enc.pack_opaque(self.fh)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(fh=dec.unpack_opaque())


@_register(17)
@dataclass
class StatfsCall(NfsCall):
    fh: bytes = b""

    def _pack_args(self, enc):
        enc.pack_opaque(self.fh)

    @classmethod
    def _unpack_args(cls, dec):
        return cls(fh=dec.unpack_opaque())


_READ_ONLY_PROCS = {
    GetattrCall.PROC,
    LookupCall.PROC,
    ReadlinkCall.PROC,
    ReadCall.PROC,
    ReaddirCall.PROC,
    StatfsCall.PROC,
}


# --- replies ------------------------------------------------------------------------


@dataclass
class NfsReply:
    """Uniform reply: status plus the fields the procedure fills in."""

    status: int = NFS_OK
    fh: bytes = b""
    attr: Optional[Fattr] = None
    data: bytes = b""
    target: str = ""
    entries: List[Tuple[str, bytes]] = field(default_factory=list)  # (name, fh)

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_u32(self.status)
        enc.pack_opaque(self.fh)
        enc.pack_bool(self.attr is not None)
        if self.attr is not None:
            self.attr.pack(enc)
        enc.pack_opaque(self.data)
        enc.pack_string(self.target)
        enc.pack_u32(len(self.entries))
        for name, fh in self.entries:
            enc.pack_string(name)
            enc.pack_opaque(fh)
        return enc.getvalue()

    @staticmethod
    def decode(data: bytes) -> "NfsReply":
        dec = XdrDecoder(data)
        reply = NfsReply(status=dec.unpack_u32())
        reply.fh = dec.unpack_opaque()
        if dec.unpack_bool():
            reply.attr = Fattr.unpack(dec)
        reply.data = dec.unpack_opaque()
        reply.target = dec.unpack_string()
        count = dec.unpack_u32()
        reply.entries = [(dec.unpack_string(), dec.unpack_opaque()) for _ in range(count)]
        dec.done()
        return reply

    @property
    def ok(self) -> bool:
        return self.status == NFS_OK


def error_reply(status: int) -> NfsReply:
    return NfsReply(status=status)
