"""The file-service conformance wrapper (paper section 3.2).

Sits between the BASE library and one off-the-shelf NFS server and makes the
server implement the common abstract specification:

* translates oids (client-visible file handles) to the server's own file
  handles and back;
* assigns oids deterministically (lowest free index, generation + 1);
* replaces the server's nondeterministic timestamps with abstract timestamps
  agreed through the BFT library;
* sorts directory listings lexicographically;
* calls the library's ``modify`` upcall before each abstract-object
  mutation.

The **conformance rep** is an array mirroring the abstract-object array;
each entry stores the generation number, the file handle the wrapped server
assigned to the object, the abstract timestamps, and the object's current
location (parent index + name) — plus reverse maps from file handles and
from ⟨fsid, fileid⟩ pairs to indices (the latter is saved to disk for
proactive recovery, section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.base.wrapper import ConformanceWrapper
from repro.nfs.fileserver.api import NFSServer
from repro.nfs.protocol import (
    NFDIR,
    NFLNK,
    NFNON,
    NFREG,
    NFSERR_IO,
    NFSERR_NOENT,
    NFSERR_NOSPC,
    NFSERR_STALE,
    NFS_OK,
    CreateCall,
    Fattr,
    GetattrCall,
    LookupCall,
    MkdirCall,
    NfsCall,
    NfsReply,
    ReadCall,
    ReaddirCall,
    ReadlinkCall,
    RemoveCall,
    RenameCall,
    RmdirCall,
    Sattr,
    SetattrCall,
    StatfsCall,
    SymlinkCall,
    WriteCall,
    error_reply,
)
from repro.nfs.spec import (
    AbstractMeta,
    NFSAbstractSpec,
    make_oid,
    parse_oid,
)

ABSTRACT_FSID = 1
LIMBO_NAME = ".__base_limbo__"
_REP_KEY = "base:conformance-rep"


@dataclass
class RepEntry:
    """Conformance-rep slot for one abstract array index."""

    generation: int = 0
    fh: Optional[bytes] = None  # None = entry free
    mtime: int = 0
    ctime: int = 0
    parent: int = 0  # index of the directory currently holding the object
    name: str = ""  # its name there ("" for the root); LIMBO parent == -1

    @property
    def allocated(self) -> bool:
        return self.fh is not None


class NFSConformanceWrapper(ConformanceWrapper):
    """Conformance wrapper C_i for one NFS server implementation I_i."""

    def __init__(
        self,
        impl: NFSServer,
        spec: Optional[NFSAbstractSpec] = None,
        disk: Optional[dict] = None,
    ) -> None:
        super().__init__(spec or NFSAbstractSpec())
        self.impl = impl
        self.disk = disk if disk is not None else {}
        self.entries: List[RepEntry] = [RepEntry() for _ in range(self.spec.num_objects)]
        self.fh_to_index: Dict[bytes, int] = {}
        self.id_to_index: Dict[Tuple[int, int], int] = {}  # (fsid, fileid) -> index
        self._limbo_fh: Optional[bytes] = None
        if _REP_KEY in self.disk:
            self._reconstruct_after_reboot()
        else:
            self._bind(0, self.impl.root_handle(), generation=0, parent=0, name="")

    # -- rep maintenance ------------------------------------------------------------

    def _bind(self, index: int, fh: bytes, generation: int, parent: int, name: str) -> None:
        entry = self.entries[index]
        entry.generation = generation
        entry.fh = fh
        entry.parent = parent
        entry.name = name
        self.fh_to_index[fh] = index
        attr = self.impl.getattr(fh).attr
        if attr is not None:
            self.id_to_index[(attr.fsid, attr.fileid)] = index

    def _unbind(self, index: int) -> None:
        entry = self.entries[index]
        if entry.fh is not None:
            self.fh_to_index.pop(entry.fh, None)
            stale = [k for k, v in self.id_to_index.items() if v == index]
            for key in stale:
                del self.id_to_index[key]
        entry.fh = None
        entry.name = ""
        entry.parent = 0

    def _lowest_free_index(self) -> Optional[int]:
        """Deterministic oid assignment (paper 3.1)."""
        for index, entry in enumerate(self.entries):
            if not entry.allocated:
                return index
        return None

    def _index_for_oid(self, oid: bytes) -> Optional[int]:
        try:
            index, generation = parse_oid(oid)
        except Exception:
            return None
        if not 0 <= index < self.spec.num_objects:
            return None
        entry = self.entries[index]
        if not entry.allocated or entry.generation != generation:
            return None
        return index

    def _abstract_fileid(self, index: int) -> int:
        return (index << 32) | self.entries[index].generation

    # -- attribute translation ----------------------------------------------------------

    def _abstract_attr(self, index: int, impl_attr: Fattr) -> Fattr:
        """Replace concrete identities and timestamps with abstract ones."""
        entry = self.entries[index]
        if impl_attr.ftype == NFDIR:
            size = self._dir_entry_count(entry.fh)
        elif impl_attr.ftype == NFLNK:
            reply = self.impl.readlink(entry.fh)
            size = len(reply.target) if reply.ok else 0
        else:
            size = impl_attr.size
        return Fattr(
            ftype=impl_attr.ftype,
            mode=impl_attr.mode,
            nlink=1,
            uid=impl_attr.uid,
            gid=impl_attr.gid,
            size=size,
            fsid=ABSTRACT_FSID,
            fileid=self._abstract_fileid(index),
            atime=entry.mtime,  # the abstract spec does not maintain atime
            mtime=entry.mtime,
            ctime=entry.ctime,
        )

    def _dir_entry_count(self, fh: bytes) -> int:
        reply = self.impl.readdir(fh)
        if not reply.ok:
            return 0
        return sum(1 for name, _fh in reply.entries if name != LIMBO_NAME)

    # -- execute (the BASE execute upcall) ---------------------------------------------------

    def execute(
        self, op: bytes, client_id: str, timestamp_micros: int, read_only: bool = False
    ) -> bytes:
        try:
            call = NfsCall.decode(op)
        except Exception:
            return error_reply(NFSERR_IO).encode()
        if read_only and not call.is_read_only:
            return error_reply(NFSERR_IO).encode()
        reply = self._dispatch(call, timestamp_micros)
        return reply.encode()

    def _dispatch(self, call: NfsCall, now: int) -> NfsReply:
        if isinstance(call, GetattrCall):
            return self._do_getattr(call)
        if isinstance(call, SetattrCall):
            return self._do_setattr(call, now)
        if isinstance(call, LookupCall):
            return self._do_lookup(call)
        if isinstance(call, ReadlinkCall):
            return self._do_readlink(call)
        if isinstance(call, ReadCall):
            return self._do_read(call)
        if isinstance(call, WriteCall):
            return self._do_write(call, now)
        if isinstance(call, (CreateCall, MkdirCall, SymlinkCall)):
            return self._do_create(call, now)
        if isinstance(call, (RemoveCall, RmdirCall)):
            return self._do_unlink(call, now)
        if isinstance(call, RenameCall):
            return self._do_rename(call, now)
        if isinstance(call, ReaddirCall):
            return self._do_readdir(call)
        if isinstance(call, StatfsCall):
            return self._do_statfs(call)
        return error_reply(NFSERR_IO)

    # each handler translates oid -> impl fh, invokes the implementation,
    # updates the rep, and translates the reply back to abstract terms.

    def _resolve(self, oid: bytes) -> Optional[int]:
        return self._index_for_oid(oid)

    def _ok_attr_reply(self, index: int, impl_reply: NfsReply, **extra) -> NfsReply:
        attr = impl_reply.attr
        if attr is None:
            attr_reply = self.impl.getattr(self.entries[index].fh)
            attr = attr_reply.attr
        abstract_attr = self._abstract_attr(index, attr) if attr else None
        entry = self.entries[index]
        return NfsReply(
            status=NFS_OK,
            fh=make_oid(index, entry.generation),
            attr=abstract_attr,
            **extra,
        )

    def _do_getattr(self, call: GetattrCall) -> NfsReply:
        index = self._resolve(call.fh)
        if index is None:
            return error_reply(NFSERR_STALE)
        reply = self.impl.getattr(self.entries[index].fh)
        if not reply.ok:
            return error_reply(reply.status)
        return self._ok_attr_reply(index, reply)

    def _do_setattr(self, call: SetattrCall, now: int) -> NfsReply:
        index = self._resolve(call.fh)
        if index is None:
            return error_reply(NFSERR_STALE)
        entry = self.entries[index]
        self.modify(index)
        sattr = call.sattr
        reply = self.impl.setattr(entry.fh, sattr)
        if not reply.ok:
            return error_reply(reply.status)
        if sattr.mtime is not None:
            entry.mtime = sattr.mtime
        elif sattr.size is not None:
            entry.mtime = now
        entry.ctime = now
        return self._ok_attr_reply(index, reply)

    def _do_lookup(self, call: LookupCall) -> NfsReply:
        dir_index = self._resolve(call.dir_fh)
        if dir_index is None:
            return error_reply(NFSERR_STALE)
        if call.name == LIMBO_NAME and dir_index == 0:
            return error_reply(NFSERR_NOENT)
        reply = self.impl.lookup(self.entries[dir_index].fh, call.name)
        if not reply.ok:
            return error_reply(reply.status)
        child = self.fh_to_index.get(reply.fh)
        if child is None:
            return error_reply(NFSERR_IO)
        return self._ok_attr_reply(child, reply)

    def _do_readlink(self, call: ReadlinkCall) -> NfsReply:
        index = self._resolve(call.fh)
        if index is None:
            return error_reply(NFSERR_STALE)
        reply = self.impl.readlink(self.entries[index].fh)
        if not reply.ok:
            return error_reply(reply.status)
        return NfsReply(status=NFS_OK, target=reply.target)

    def _do_read(self, call: ReadCall) -> NfsReply:
        index = self._resolve(call.fh)
        if index is None:
            return error_reply(NFSERR_STALE)
        reply = self.impl.read(self.entries[index].fh, call.offset, call.count)
        if not reply.ok:
            return error_reply(reply.status)
        return self._ok_attr_reply(index, reply, data=reply.data)

    def _do_write(self, call: WriteCall, now: int) -> NfsReply:
        index = self._resolve(call.fh)
        if index is None:
            return error_reply(NFSERR_STALE)
        entry = self.entries[index]
        self.modify(index)
        reply = self.impl.write(entry.fh, call.offset, call.data)
        if not reply.ok:
            return error_reply(reply.status)
        entry.mtime = now
        entry.ctime = now
        return self._ok_attr_reply(index, reply)

    def _do_create(self, call, now: int) -> NfsReply:
        dir_index = self._resolve(call.dir_fh)
        if dir_index is None:
            return error_reply(NFSERR_STALE)
        if call.name == LIMBO_NAME:
            return error_reply(NFSERR_IO)
        new_index = self._lowest_free_index()
        if new_index is None:
            return error_reply(NFSERR_NOSPC)
        dir_entry = self.entries[dir_index]
        self.modify(dir_index)
        self.modify(new_index)
        if isinstance(call, CreateCall):
            reply = self.impl.create(dir_entry.fh, call.name, call.sattr)
        elif isinstance(call, MkdirCall):
            reply = self.impl.mkdir(dir_entry.fh, call.name, call.sattr)
        else:
            reply = self.impl.symlink(dir_entry.fh, call.name, call.target, call.sattr)
        if not reply.ok:
            return error_reply(reply.status)
        generation = self.entries[new_index].generation + 1
        self._bind(new_index, reply.fh, generation, parent=dir_index, name=call.name)
        created = self.entries[new_index]
        created.mtime = now
        created.ctime = now
        dir_entry.mtime = now
        dir_entry.ctime = now
        return self._ok_attr_reply(new_index, reply)

    def _do_unlink(self, call, now: int) -> NfsReply:
        dir_index = self._resolve(call.dir_fh)
        if dir_index is None:
            return error_reply(NFSERR_STALE)
        if call.name == LIMBO_NAME:
            return error_reply(NFSERR_NOENT)
        dir_entry = self.entries[dir_index]
        looked_up = self.impl.lookup(dir_entry.fh, call.name)
        if not looked_up.ok:
            return error_reply(looked_up.status)
        child = self.fh_to_index.get(looked_up.fh)
        if child is None:
            return error_reply(NFSERR_IO)
        self.modify(dir_index)
        self.modify(child)
        if isinstance(call, RmdirCall):
            reply = self.impl.rmdir(dir_entry.fh, call.name)
        else:
            reply = self.impl.remove(dir_entry.fh, call.name)
        if not reply.ok:
            return error_reply(reply.status)
        self._unbind(child)
        dir_entry.mtime = now
        dir_entry.ctime = now
        return NfsReply(status=NFS_OK)

    def _do_rename(self, call: RenameCall, now: int) -> NfsReply:
        src_index = self._resolve(call.from_dir)
        dst_index = self._resolve(call.to_dir)
        if src_index is None or dst_index is None:
            return error_reply(NFSERR_STALE)
        if LIMBO_NAME in (call.from_name, call.to_name):
            return error_reply(NFSERR_IO)
        src_dir = self.entries[src_index]
        dst_dir = self.entries[dst_index]
        moving_lookup = self.impl.lookup(src_dir.fh, call.from_name)
        if not moving_lookup.ok:
            return error_reply(moving_lookup.status)
        moving = self.fh_to_index.get(moving_lookup.fh)
        overwritten: Optional[int] = None
        existing_lookup = self.impl.lookup(dst_dir.fh, call.to_name)
        if existing_lookup.ok:
            overwritten = self.fh_to_index.get(existing_lookup.fh)
        self.modify(src_index)
        self.modify(dst_index)
        if moving is not None:
            self.modify(moving)
        if overwritten is not None and overwritten != moving:
            self.modify(overwritten)
        reply = self.impl.rename(src_dir.fh, call.from_name, dst_dir.fh, call.to_name)
        if not reply.ok:
            return error_reply(reply.status)
        if overwritten is not None and overwritten != moving:
            self._unbind(overwritten)
        if moving is not None:
            self.entries[moving].parent = dst_index
            self.entries[moving].name = call.to_name
        for directory in (src_dir, dst_dir):
            directory.mtime = now
            directory.ctime = now
        return NfsReply(status=NFS_OK)

    def _do_readdir(self, call: ReaddirCall) -> NfsReply:
        index = self._resolve(call.fh)
        if index is None:
            return error_reply(NFSERR_STALE)
        reply = self.impl.readdir(self.entries[index].fh)
        if not reply.ok:
            return error_reply(reply.status)
        out: List[Tuple[str, bytes]] = []
        for name, child_fh in reply.entries:
            if name == LIMBO_NAME:
                continue
            child = self.fh_to_index.get(child_fh)
            if child is None:
                continue
            out.append((name, make_oid(child, self.entries[child].generation)))
        out.sort()  # identical replies from every replica (paper 3.2)
        return self._ok_attr_reply(index, reply, entries=out)

    def _do_statfs(self, call: StatfsCall) -> NfsReply:
        index = self._resolve(call.fh)
        if index is None:
            return error_reply(NFSERR_STALE)
        # Abstract statfs: deterministic constants derived from the spec, not
        # from any implementation's allocator.
        from repro.util.xdr import XdrEncoder

        free_entries = sum(1 for e in self.entries if not e.allocated)
        payload = (
            XdrEncoder()
            .pack_u32(8192)
            .pack_u32(512)
            .pack_u64(self.spec.num_objects)
            .pack_u64(free_entries)
            .getvalue()
        )
        return NfsReply(status=NFS_OK, data=payload)

    # -- state conversion & recovery: implemented in conversion.py -----------------------

    def get_obj(self, index: int) -> bytes:
        from repro.nfs.conversion import abstraction_function

        return abstraction_function(self, index)

    def put_objs(self, objects: Dict[int, bytes]) -> None:
        from repro.nfs.conversion import inverse_abstraction_function

        inverse_abstraction_function(self, objects)

    def save_for_recovery(self) -> None:
        from repro.nfs.recovery import save_rep

        save_rep(self)

    def _reconstruct_after_reboot(self) -> None:
        from repro.nfs.recovery import reconstruct_rep

        reconstruct_rep(self)

    # -- limbo management (used by the inverse abstraction function) ----------------------

    def limbo_fh(self) -> bytes:
        """Handle of the hidden staging directory, created on demand."""
        if self._limbo_fh is not None:
            probe = self.impl.getattr(self._limbo_fh)
            if probe.ok:
                return self._limbo_fh
        root_fh = self.entries[0].fh
        assert root_fh is not None
        looked_up = self.impl.lookup(root_fh, LIMBO_NAME)
        if looked_up.ok:
            self._limbo_fh = looked_up.fh
        else:
            made = self.impl.mkdir(root_fh, LIMBO_NAME, Sattr(mode=0o700))
            if not made.ok:
                raise RuntimeError(f"cannot create limbo dir: {made.status}")
            self._limbo_fh = made.fh
        return self._limbo_fh
