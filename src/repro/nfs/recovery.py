"""Proactive-recovery support for the file service (paper section 3.4).

NFS file handles are volatile: the same object may get a different handle
after the server restarts.  The wrapper therefore maintains a map from the
persistent ⟨fsid, fileid⟩ attribute pair to oids; ``save_rep`` writes it (and
the rest of the conformance rep) to disk synchronously before a proactive
recovery, and ``reconstruct_rep`` rebuilds the rep after reboot by walking
the file system's directory tree depth-first from the root, using the map to
recover each object's oid.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.nfs.protocol import NFDIR
from repro.nfs.wrapper import LIMBO_NAME, NFSConformanceWrapper, _REP_KEY


def save_rep(wrapper: NFSConformanceWrapper) -> None:
    """Persist the conformance rep and the ⟨fsid, fileid⟩→oid map."""
    entries = [
        {
            "generation": entry.generation,
            "allocated": entry.allocated,
            "mtime": entry.mtime,
            "ctime": entry.ctime,
        }
        for entry in wrapper.entries
    ]
    id_map = [
        (fsid, fileid, index) for (fsid, fileid), index in wrapper.id_to_index.items()
    ]
    wrapper.disk[_REP_KEY] = {"entries": entries, "id_map": id_map}


def reconstruct_rep(wrapper: NFSConformanceWrapper) -> None:
    """Rebuild the conformance rep from the saved map plus a depth-first walk
    of the (freshly restarted) implementation's directory tree."""
    saved = wrapper.disk[_REP_KEY]
    id_map: Dict[Tuple[int, int], int] = {
        (fsid, fileid): index for fsid, fileid, index in saved["id_map"]
    }
    for index, snapshot in enumerate(saved["entries"]):
        if index >= len(wrapper.entries):
            break
        entry = wrapper.entries[index]
        entry.generation = snapshot["generation"]
        entry.mtime = snapshot["mtime"]
        entry.ctime = snapshot["ctime"]
        entry.fh = None  # rebound during the walk if the object still exists

    impl = wrapper.impl
    root_fh = impl.root_handle()
    wrapper.fh_to_index.clear()
    wrapper.id_to_index.clear()

    # Depth-first traversal from the root (paper 3.4).
    stack: List[Tuple[bytes, int, str]] = [(root_fh, 0, "")]
    visited = set()
    while stack:
        fh, parent_index, name = stack.pop()
        attr_reply = impl.getattr(fh)
        if not attr_reply.ok or attr_reply.attr is None:
            continue
        attr = attr_reply.attr
        key = (attr.fsid, attr.fileid)
        if key in visited:
            continue
        visited.add(key)
        index = 0 if fh == root_fh else id_map.get(key)
        if index is None:
            # Concrete object unknown to the saved map (e.g. orphaned limbo
            # content): leave it; state transfer never looks at it.
            pass
        else:
            entry = wrapper.entries[index]
            entry.fh = fh
            entry.parent = parent_index
            entry.name = name
            wrapper.fh_to_index[fh] = index
            wrapper.id_to_index[key] = index
        if attr.ftype == NFDIR:
            listing = impl.readdir(fh)
            if listing.ok:
                for child_name, child_fh in listing.entries:
                    if fh == root_fh and child_name == LIMBO_NAME:
                        continue
                    stack.append((child_fh, index if index is not None else 0, child_name))
