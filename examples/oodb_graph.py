#!/usr/bin/env python3
"""The second example from the paper's abstract: an object-oriented database
where every replica runs the *same, non-deterministic* implementation.

ThorDB assigns memory-address-like object handles (random heap base +
jittered strides), so four replicas running identical code still hold
completely different concrete states.  The BASE conformance wrapper maps the
handles to deterministic abstract oids, so clients see one consistent
database — and corruption in any single replica's heap is healed from the
abstract state of the others.

Run:  python examples/oodb_graph.py
"""

from repro.bft.config import BFTConfig
from repro.oodb import OODBDeployment


def main() -> None:
    deployment = OODBDeployment(
        config=BFTConfig(checkpoint_interval=16, log_window=64), num_objects=128
    )
    db = deployment.client("C0")

    # Build a small social graph.
    alice = db.new("Person")
    db.set(alice, "name", "alice")
    bob = db.new("Person")
    db.set(bob, "name", "bob")
    db.set(alice, "knows", bob)
    db.set(bob, "knows", alice)
    db.set(db.root, "directory", alice)

    print("alice:", db.get(alice))
    print("bob  :", db.get(bob))
    print("root :", db.get(db.root))

    # Same code, four different heaps: show the concrete divergence.
    handles = {
        rid: hex(deployment.wrapper(rid).handles[1] or 0)
        for rid in deployment.cluster.hosts
    }
    print("concrete handle of 'alice' at each replica:", handles)
    assert len(set(handles.values())) == 4, "handles should all differ"

    deployment.sim.run_for(1.0)
    roots = {
        rid: deployment.cluster.service(rid).current_node(0, 0)[1].hex()[:12]
        for rid in deployment.cluster.hosts
    }
    print("abstract state roots:", roots)
    assert len(set(roots.values())) == 1

    # Corrupt one replica's heap behind its back, then rejuvenate it.
    victim_handle = deployment.wrapper("R1").handles[1]
    deployment.disks["R1"]["thor:heap"][victim_handle]["attrs"]["name"] = "EVIL"
    print("\ncorrupted 'alice' in R1's heap; recovering R1 ...")
    host = deployment.cluster.hosts["R1"]
    host.recover_now()
    deployment.sim.run_for(5.0)
    print(
        "recovery:",
        "completed" if host.replica.counters.get("recoveries_completed") else "failed",
        f"(objects fetched: {host.replica.counters.get('objects_fetched')})",
    )
    roots = {
        rid: deployment.cluster.service(rid).current_node(0, 0)[1].hex()[:12]
        for rid in deployment.cluster.hosts
    }
    assert len(set(roots.values())) == 1
    print("alice, everywhere, again:", db.get(alice))


if __name__ == "__main__":
    main()
