#!/usr/bin/env python3
"""Opportunistic N-version programming vs a deterministic software bug.

The scenario the paper's introduction motivates: a deterministic bug (here,
a write payload that crashes the server) takes down *every* replica of a
homogeneous deployment at once — but in a deployment whose replicas run
distinct off-the-shelf implementations, only the buggy vendor dies and the
service keeps running.  Proactive recovery then rejuvenates the crashed
replica from the abstract state of the survivors.

Run:  python examples/n_version_survival.py
"""

from repro.bft.client import InvocationTimeout
from repro.bft.config import BFTConfig
from repro.faults import POISON, BuggyServer
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment

CONFIG = dict(num_objects=128, config=BFTConfig(checkpoint_interval=16, log_window=64))


def homogeneous() -> NFSDeployment:
    """Everyone runs the buggy vendor: no failure independence."""
    return NFSDeployment(
        {
            rid: (lambda disk, i=i: BuggyServer(MemFS(disk=disk, seed=10 + i)))
            for i, rid in enumerate(["R0", "R1", "R2", "R3"])
        },
        **CONFIG,
    )


def n_version() -> NFSDeployment:
    """Four vendors; the bug exists only in vendor A's code."""
    return NFSDeployment(
        {
            "R0": lambda disk: BuggyServer(MemFS(disk=disk, seed=10)),
            "R1": lambda disk: Ext2FS(disk=disk, seed=11),
            "R2": lambda disk: FFS(disk=disk, seed=12),
            "R3": lambda disk: LogFS(disk=disk, seed=13),
        },
        **CONFIG,
    )


def trigger_bug(deployment: NFSDeployment, label: str) -> None:
    fs = NFSClient(deployment.relay("C0"))
    fs.write_file("/normal.txt", b"everything is fine")
    fs.create("/bomb.txt")
    print(f"\n--- {label} ---")
    try:
        fs.write("/bomb.txt", POISON)
        print("poison write completed (service survived the trigger)")
    except (InvocationTimeout, Exception) as exc:
        deployment.cluster.client("C0").cancel()
        print(f"poison write got no quorum: {type(exc).__name__}")
    crashed = [
        rid for rid in deployment.cluster.hosts
        if deployment.cluster.network.is_down(rid)
    ]
    print(f"crashed replicas: {crashed or 'none'}")
    try:
        fs.write_file("/after.txt", b"service still answering")
        print("post-bug write:", fs.read_file("/after.txt").decode())
    except (InvocationTimeout, Exception):
        deployment.cluster.client("C0").cancel()
        print("post-bug write FAILED: the service is gone")


def main() -> None:
    trigger_bug(homogeneous(), "same implementation on all four replicas")

    deployment = n_version()
    trigger_bug(deployment, "four distinct implementations (N-version)")

    # Rejuvenate the one crashed replica: scrub the poison, let the quorum
    # advance, then reboot R0 from its disk + the survivors' abstract state.
    fs = NFSClient(deployment.relay("C0"))
    fs.unlink("/bomb.txt")
    for i in range(20):
        fs.write_file(f"/progress{i}.txt", bytes([i]) * 16)
    deployment.sim.run_for(1.0)
    host = deployment.cluster.hosts["R0"]
    host.recover_now()
    deployment.sim.run_for(5.0)
    print(
        "\nproactive recovery of the crashed vendor:",
        "completed" if host.replica.counters.get("recoveries_completed") else "failed",
    )
    roots = {
        rid: deployment.cluster.service(rid).current_node(0, 0)[1].hex()[:12]
        for rid in deployment.cluster.hosts
    }
    print("abstract roots:", roots)
    assert len(set(roots.values())) == 1
    print("back to full strength: all four replicas agree again")


if __name__ == "__main__":
    main()
