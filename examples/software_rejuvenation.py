#!/usr/bin/env python3
"""Software rejuvenation: proactive recovery vs memory-leak aging.

Every replica runs an implementation that leaks a little memory per
operation and crashes once the leak passes a threshold (Huang et al.'s
aging model, cited by the paper).  Without rejuvenation the replicas age out
one after another and the service eventually loses its quorum; with the
staggered recovery watchdog, each reboot clears the leak *before* the
threshold, the abstract state is verified against the other replicas, and
the service never misses a beat.

Run:  python examples/software_rejuvenation.py
"""

from repro.bft.config import BFTConfig
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import MemFS
from repro.nfs.relay import NFSDeployment

AGING_THRESHOLD = 12_000
OPS = 200


def build(recovery_period: float) -> NFSDeployment:
    return NFSDeployment(
        {
            rid: (
                lambda disk, i=i: MemFS(
                    disk=disk, seed=20 + i, aging_threshold=AGING_THRESHOLD
                )
            )
            for i, rid in enumerate(["R0", "R1", "R2", "R3"])
        },
        num_objects=64,
        config=BFTConfig(
            checkpoint_interval=16, log_window=64, recovery_period=recovery_period
        ),
    )


def run(recovery_period: float) -> None:
    label = f"recovery period = {recovery_period or 'off'}"
    deployment = build(recovery_period)
    if recovery_period:
        deployment.cluster.start_proactive_recovery()
    fs = NFSClient(deployment.relay("C0"))
    fs.mkdir("/load")
    for i in range(4):
        fs.create(f"/load/f{i}")

    completed = 0
    try:
        for i in range(OPS):
            fs.write(f"/load/f{i % 4}", bytes([i % 251]) * 512, offset=0)
            completed += 1
            if i % 20 == 19:
                deployment.sim.run_for(0.2)
    except Exception:
        deployment.cluster.client("C0").cancel()
    deployment.sim.run_for(2.0)

    crashes = sum(
        host.replica.counters.get("implementation_crashes")
        for host in deployment.cluster.hosts.values()
    )
    recoveries = sum(
        host.replica.counters.get("recoveries_completed")
        for host in deployment.cluster.hosts.values()
    )
    print(f"\n--- {label} ---")
    print(f"operations completed : {completed}/{OPS}")
    print(f"aging crashes        : {crashes}")
    print(f"recoveries completed : {recoveries}")
    windows = [
        (round(start, 2), round(end, 2))
        for host in deployment.cluster.hosts.values()
        for start, end in host.recovery_log
    ]
    if windows:
        print(f"recovery windows     : {sorted(windows)[:8]}{' ...' if len(windows) > 8 else ''}")


def main() -> None:
    run(0.0)   # replicas age out and the service degrades
    run(0.8)   # staggered rejuvenation keeps every replica young


if __name__ == "__main__":
    main()
