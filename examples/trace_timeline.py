#!/usr/bin/env python3
"""Watching the protocol work: the structured tracer.

Runs a short scenario (traffic, a primary crash, a proactive recovery) on a
traced cluster and prints the resulting protocol timeline — stable
checkpoints, the view change, the state transfer, the recovery.

Run:  python examples/trace_timeline.py
"""

from repro.bft.cluster import Cluster
from repro.bft.config import BFTConfig
from repro.bft.testing import KVStateMachine, encode_set


def main() -> None:
    disks = {}

    def factory_for(replica_id):
        disks.setdefault(replica_id, {})
        return lambda: KVStateMachine(num_slots=32, disk=disks[replica_id])

    cluster = Cluster(
        factory_for,
        config=BFTConfig(checkpoint_interval=8, log_window=16),
        trace=True,
    )
    client = cluster.client("C0")

    for i in range(10):
        client.invoke(encode_set(i % 4, bytes([i])))

    cluster.crash("R0")  # primary down: watch the view change
    client.invoke(encode_set(0, b"post-failover"), timeout=30)
    cluster.restart("R0")
    cluster.settle(2.0)

    cluster.hosts["R2"].recover_now()  # proactive recovery: watch the reboot
    cluster.settle(3.0)

    print("protocol timeline:")
    print(cluster.tracer.dump())
    print()
    print(
        f"summary: {cluster.tracer.count('checkpoint_stable')} stable checkpoints, "
        f"{cluster.tracer.count('view_adopted')} view adoptions, "
        f"{cluster.tracer.count('state_transfer_completed')} state transfers, "
        f"{cluster.tracer.count('recovery_completed')} recoveries"
    )


if __name__ == "__main__":
    main()
