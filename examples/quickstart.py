#!/usr/bin/env python3
"""Quickstart: a Byzantine-fault-tolerant file service in ~40 lines.

Builds the paper's deployment — four replicas, each running a *different*
off-the-shelf file-system implementation behind a BASE conformance wrapper —
mounts it through a relay, and does ordinary file work while one replica is
crashed.

Run:  python examples/quickstart.py
"""

from repro.bft.config import BFTConfig
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment


def main() -> None:
    # One implementation factory per replica: opportunistic N-version
    # programming (paper section 1).  Each vendor differs in representation,
    # file-handle scheme, readdir order, and timestamp granularity.
    deployment = NFSDeployment(
        {
            "R0": lambda disk: MemFS(disk=disk, seed=1, clock_skew=+0.5),
            "R1": lambda disk: Ext2FS(disk=disk, seed=2, clock_skew=-0.3),
            "R2": lambda disk: FFS(disk=disk, seed=3, clock_skew=+0.8),
            "R3": lambda disk: LogFS(disk=disk, seed=4, clock_skew=+0.1),
        },
        config=BFTConfig(checkpoint_interval=16, log_window=64),
        num_objects=256,
    )

    # The relay plays the part of the user-level relay in Figure 2; the
    # client is the "kernel NFS client" that applications talk to.
    fs = NFSClient(deployment.relay("C0"))

    fs.mkdir("/project")
    fs.write_file("/project/README.md", b"# BASE quickstart\n")
    fs.write_file("/project/data.bin", bytes(range(256)) * 8)
    fs.symlink("/project/README.md", "/latest")

    print("listing /          :", fs.listdir("/"))
    print("listing /project   :", fs.listdir("/project"))
    print("README reads back  :", fs.read_file("/project/README.md").decode().strip())
    print("symlink target     :", fs.readlink("/latest"))
    stat = fs.stat("/project/data.bin")
    print(f"data.bin           : {stat.size} bytes, mtime={stat.mtime}us (agreed)")

    # Byzantine fault tolerance in action: crash one replica; nothing
    # user-visible changes (f = 1 of n = 4).
    deployment.cluster.crash("R2")
    fs.write_file("/project/under-failure.txt", b"written with a replica down")
    print("with R2 crashed    :", fs.read_file("/project/under-failure.txt").decode())

    # The four concrete states differ wildly; the abstract states agree.
    deployment.cluster.restart("R2")
    deployment.sim.run_for(3.0)
    roots = {
        rid: deployment.cluster.service(rid).current_node(0, 0)[1].hex()[:16]
        for rid in deployment.cluster.hosts
    }
    print("abstract roots     :", roots)
    assert len(set(roots.values())) == 1, "replicas diverged!"
    print("four different implementations, one abstract state — OK")


if __name__ == "__main__":
    main()
