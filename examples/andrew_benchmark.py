#!/usr/bin/env python3
"""Reproduce the paper's evaluation: the Andrew benchmark, replicated vs the
off-the-shelf implementation it wraps (paper section 4: ≈30% overhead).

Run:  python examples/andrew_benchmark.py [scale]
"""

import sys

from repro.bench.andrew import AndrewBenchmark
from repro.bench.metrics import ExperimentTable, ratio
from repro.bft.config import BFTConfig
from repro.net.simulator import Simulator
from repro.nfs.client import NFSClient
from repro.nfs.direct import direct_client
from repro.nfs.fileserver import Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    # Baseline: a client mounted directly on the unreplicated MemFS.
    baseline_sim = Simulator(seed=0)
    baseline_fs = direct_client(MemFS(disk={}, seed=1), sim=baseline_sim, round_trip=0.001)
    baseline = AndrewBenchmark(baseline_fs, baseline_sim, scale=scale).run()

    # Replicated: four vendors behind BASE.
    deployment = NFSDeployment(
        {
            "R0": lambda disk: MemFS(disk=disk, seed=1),
            "R1": lambda disk: Ext2FS(disk=disk, seed=2),
            "R2": lambda disk: FFS(disk=disk, seed=3),
            "R3": lambda disk: LogFS(disk=disk, seed=4),
        },
        config=BFTConfig(checkpoint_interval=16, log_window=64),
        num_objects=max(256, scale * 64),
    )
    replicated_fs = NFSClient(deployment.relay("C0"))
    replicated = AndrewBenchmark(replicated_fs, deployment.sim, scale=scale).run()

    table = ExperimentTable(
        f"Andrew benchmark, scale={scale} (virtual seconds per phase)"
    )
    for base_phase, rep_phase in zip(baseline.phases, replicated.phases):
        table.add_row(
            phase=base_phase.name,
            unreplicated=round(base_phase.virtual_seconds, 4),
            replicated=round(rep_phase.virtual_seconds, 4),
            overhead=f"{ratio(rep_phase.virtual_seconds, base_phase.virtual_seconds):.2f}x",
        )
    overall = ratio(replicated.total_seconds, baseline.total_seconds)
    table.add_row(
        phase="TOTAL",
        unreplicated=round(baseline.total_seconds, 4),
        replicated=round(replicated.total_seconds, 4),
        overhead=f"{overall:.2f}x",
    )
    table.show()
    print(f"\npaper's result: ~1.30x  |  this run: {overall:.2f}x")

    counters = deployment.cluster.total_counters()
    print(
        f"protocol costs: {counters.get('messages_sent')} messages, "
        f"{counters.get('bytes_sent')} bytes, "
        f"{counters.get('mac_generate') + counters.get('mac_verify')} MAC ops"
    )


if __name__ == "__main__":
    main()
