"""The ``repro bench`` CLI: report shape, determinism contract, comparison."""

import json

from repro.bench.cli import (
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    bench_main,
    compare_reports,
)
from repro.bench.suites import SCENARIOS, SUITES


def test_suites_reference_registered_scenarios():
    assert "smoke" in SUITES and "full" in SUITES
    for suite in SUITES.values():
        for name in suite:
            assert name in SCENARIOS


def _report(**metrics):
    return {"schema": 1, "suite": "smoke", "scenarios": {"s": metrics}}


def test_compare_flags_cost_increase():
    regressions = compare_reports(
        _report(messages_sent=120), _report(messages_sent=100), threshold=0.05
    )
    assert [(r[0], r[1]) for r in regressions] == [("s", "messages_sent")]


def test_compare_flags_throughput_drop():
    regressions = compare_reports(
        _report(ops_per_vsec=80.0), _report(ops_per_vsec=100.0), threshold=0.05
    )
    assert [(r[0], r[1]) for r in regressions] == [("s", "ops_per_vsec")]


def test_compare_respects_direction_and_threshold():
    # Improvements and sub-threshold noise never flag; informational metrics
    # (not in either direction set) never flag.
    current = _report(messages_sent=90, ops_per_vsec=104.0, ops=999)
    baseline = _report(messages_sent=100, ops_per_vsec=100.0, ops=1)
    assert compare_reports(current, baseline, threshold=0.05) == []
    barely = _report(messages_sent=104)
    assert compare_reports(barely, _report(messages_sent=100), threshold=0.05) == []


def test_compare_ignores_scenarios_missing_from_current():
    baseline = {"scenarios": {"gone": {"messages_sent": 1}}}
    assert compare_reports({"scenarios": {}}, baseline, threshold=0.0) == []


def test_usage_errors():
    assert bench_main(["--suite", "nonsense"]) == EXIT_USAGE
    assert bench_main(["--threshold", "-1"]) == EXIT_USAGE


def test_list_prints_every_scenario_without_running_any(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert bench_main(["--list"]) == EXIT_OK
    lines = capsys.readouterr().out.splitlines()
    expected = [
        f"{suite}: {name}" for suite in sorted(SUITES) for name in SUITES[suite]
    ]
    assert lines == expected
    # Listing is a pure query: no report file is written.
    assert list(tmp_path.iterdir()) == []


def test_compare_against_missing_baseline_is_usage_error(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    # The suite must not run before argument validation catches the baseline.
    assert (
        bench_main(["--compare", str(tmp_path / "nope.json"), "--quiet"]) == EXIT_USAGE
    )


def test_compare_against_corrupt_baseline_is_usage_error(tmp_path, monkeypatch, capsys):
    """Corrupt or mis-shaped baselines must die with a one-line error and
    exit 2 — never a traceback — and always before the suite runs."""
    monkeypatch.chdir(tmp_path)
    cases = [
        ("truncated.json", '{"scenarios": {"kv"'),  # invalid JSON
        ("list.json", "[1, 2, 3]"),  # valid JSON, wrong top-level type
        ("scalar.json", '"BENCH"'),  # valid JSON, scalar
        ("bad-scenarios.json", '{"scenarios": [1]}'),  # scenarios not an object
        ("bad-metrics.json", '{"scenarios": {"kv": 7}}'),  # metrics not an object
        (
            "bad-value.json",
            '{"scenarios": {"kv": {"ops_per_vsec": "fast"}}}',
        ),  # metric value not a number
    ]
    for name, content in cases:
        baseline = tmp_path / name
        baseline.write_text(content)
        assert bench_main(["--compare", str(baseline), "--quiet"]) == EXIT_USAGE, name
        err = capsys.readouterr().err
        assert err.startswith("bench:"), (name, err)
        assert "Traceback" not in err, name


def _without_wall_clock(report):
    """``analyze_seconds`` is the suite's one deliberate wall-clock
    (informational-only) metric; everything else must be bit-identical."""
    scrubbed = json.loads(json.dumps(report))
    scrubbed["scenarios"].get("analyze_timing", {}).pop("analyze_seconds", None)
    return scrubbed


def test_smoke_suite_end_to_end(tmp_path):
    """Full CLI round trip: run, self-compare (exit 0), doctored baseline
    regression (exit 1), deterministic re-run."""
    out = tmp_path / "BENCH_smoke.json"
    assert bench_main(["--suite", "smoke", "--out", str(out), "--quiet"]) == EXIT_OK
    report = json.loads(out.read_text())
    assert report["suite"] == "smoke"
    assert set(report["scenarios"]) == set(SUITES["smoke"])

    assert (
        bench_main(
            ["--suite", "smoke", "--out", str(tmp_path / "again.json"),
             "--compare", str(out), "--quiet"]
        )
        == EXIT_OK
    )
    again = json.loads((tmp_path / "again.json").read_text())
    assert _without_wall_clock(again) == _without_wall_clock(report)

    doctored = json.loads(out.read_text())
    doctored["scenarios"]["kv_throughput"]["messages_sent"] = 1
    baseline = tmp_path / "doctored.json"
    baseline.write_text(json.dumps(doctored))
    assert (
        bench_main(
            ["--suite", "smoke", "--out", str(tmp_path / "third.json"),
             "--compare", str(baseline), "--quiet"]
        )
        == EXIT_REGRESSION
    )
