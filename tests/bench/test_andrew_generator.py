"""The Andrew benchmark generator and harness utilities."""

import pytest

from repro.bench.andrew import AndrewBenchmark, synthesize_source_tree
from repro.bench.metrics import ExperimentTable, measure_virtual_time, ratio
from repro.bench.codesize import count_semicolon_lines
from repro.net.simulator import Simulator
from repro.nfs.direct import direct_client
from repro.nfs.fileserver import MemFS


class TestSourceTree:
    def test_deterministic(self):
        assert synthesize_source_tree(scale=2, seed=7) == synthesize_source_tree(
            scale=2, seed=7
        )

    def test_scale_multiplies_units(self):
        small = synthesize_source_tree(scale=1)
        large = synthesize_source_tree(scale=3)
        assert len(large) == 3 * len(small)

    def test_files_have_content(self):
        for path, body in synthesize_source_tree(scale=1):
            assert path
            assert len(body) > 0

    def test_paths_unique(self):
        paths = [path for path, _ in synthesize_source_tree(scale=4)]
        assert len(paths) == len(set(paths))


class TestAndrewPhases:
    def _run(self):
        sim = Simulator(seed=0)
        fs = direct_client(MemFS(disk={}, seed=1), sim=sim, round_trip=0.001)
        return AndrewBenchmark(fs, sim, scale=1).run()

    def test_five_phases_in_order(self):
        result = self._run()
        assert [p.name for p in result.phases] == [
            "mkdir",
            "copy",
            "scan",
            "read",
            "make",
        ]

    def test_phases_take_time_and_do_work(self):
        result = self._run()
        for phase in result.phases:
            assert phase.virtual_seconds > 0
            assert phase.operations > 0

    def test_totals_are_sums(self):
        result = self._run()
        assert result.total_seconds == pytest.approx(
            sum(p.virtual_seconds for p in result.phases)
        )
        assert result.total_operations == sum(p.operations for p in result.phases)

    def test_rows_include_total(self):
        result = self._run()
        rows = result.as_rows()
        assert rows[-1]["phase"] == "total"
        assert len(rows) == 6

    def test_deterministic_runs(self):
        a = self._run()
        b = self._run()
        assert [p.virtual_seconds for p in a.phases] == [
            p.virtual_seconds for p in b.phases
        ]


class TestMetrics:
    def test_measure_virtual_time(self):
        sim = Simulator()
        with measure_virtual_time(sim) as box:
            sim.schedule(1.5, lambda: None)
            sim.run_until_idle()
        assert box["virtual_seconds"] == pytest.approx(1.5)

    def test_table_render(self):
        table = ExperimentTable("demo")
        table.add_row(name="a", value=1)
        table.add_row(name="bb", value=22)
        rendered = table.render()
        assert "demo" in rendered
        assert "name" in rendered and "value" in rendered
        assert "bb" in rendered

    def test_empty_table(self):
        assert "(no rows)" in ExperimentTable("empty").render()

    def test_ratio_guards_zero(self):
        assert ratio(1.0, 0.0) == float("inf")
        assert ratio(3.0, 2.0) == 1.5


class TestCodeSize:
    def test_counts_statements_not_structure(self):
        source = (
            "x = 1\n"
            "for i in range(3):\n"
            "    y = i\n"
            "class C:\n"
            "    z = 2\n"
        )
        # x=1, y=i, z=2 — not the for/class lines themselves.
        assert count_semicolon_lines(source) == 3

    def test_docstrings_excluded(self):
        assert count_semicolon_lines('"""module doc"""\nx = 1\n') == 1

    def test_empty_module(self):
        assert count_semicolon_lines("") == 0
