"""Workload generators drive real operations and are deterministic."""

import pytest

from repro.bench.workloads import metadata_churn, read_heavy, write_heavy
from repro.net.simulator import Simulator
from repro.nfs.direct import direct_client
from repro.nfs.fileserver import MemFS


@pytest.fixture
def fs():
    return direct_client(MemFS(disk={}, seed=1), sim=Simulator(seed=0))


def test_write_heavy_touches_working_set(fs):
    count = write_heavy(fs, 20, width=4)
    assert count == 20
    assert sorted(fs.listdir("/wh")) == ["f0", "f1", "f2", "f3"]
    assert any(fs.stat(f"/wh/f{i}").size > 0 for i in range(4))


def test_read_heavy_prepares_then_reads(fs):
    read_heavy(fs, 10, width=3)
    assert sorted(fs.listdir("/rh")) == ["f0", "f1", "f2"]
    calls_before = fs.transport.counters.get("nfs_calls")
    read_heavy(fs, 10, width=3)
    assert fs.transport.counters.get("nfs_calls") > calls_before


def test_metadata_churn_leaves_consistent_tree(fs):
    metadata_churn(fs, 40, seed=3)
    for name in fs.listdir("/mc"):
        assert fs.exists(f"/mc/{name}")


def test_workloads_deterministic():
    def run():
        fs = direct_client(MemFS(disk={}, seed=1), sim=Simulator(seed=0))
        metadata_churn(fs, 30, seed=5)
        return sorted(fs.listdir("/mc"))

    assert run() == run()
