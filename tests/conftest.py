"""Shared test helpers: quick cluster construction over the KV service."""

from repro.bft.cluster import Cluster
from repro.bft.testing import kv_cluster  # re-exported for test modules


def kv_states(cluster: Cluster):
    """Concatenated cell contents per replica (for convergence asserts)."""
    return {
        replica_id: b"\x1f".join(cluster.service(replica_id).cells)
        for replica_id in cluster.hosts
    }


def assert_converged(cluster: Cluster) -> None:
    states = kv_states(cluster)
    assert len(set(states.values())) == 1, f"replica states diverged: { {k: v[:40] for k, v in states.items()} }"
