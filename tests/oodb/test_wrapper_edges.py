"""OODB wrapper edge cases and internal-label protection."""

import pytest

from repro.oodb.db import ThorDB
from repro.oodb.spec import (
    OODBAbstractSpec,
    OODBReply,
    OODB_BADOP,
    OODB_NOATTR,
    OODB_NOSPC,
    OODB_STALE,
    ROOT_AOID,
    encode_del,
    encode_free,
    encode_new,
    encode_set,
    make_aoid,
)
from repro.oodb.wrapper import OODBConformanceWrapper, _LABEL_ATTR


def make_wrapper(num_objects=4, seed=9):
    return OODBConformanceWrapper(
        ThorDB(disk={}, seed=seed), OODBAbstractSpec(num_objects), disk={}
    )


def run(wrapper, op, ts=1_000_000, read_only=False):
    return OODBReply.decode(wrapper.execute(op, "C0", ts, read_only))


def test_empty_class_name_rejected():
    wrapper = make_wrapper()
    assert run(wrapper, encode_new("")).status == OODB_BADOP


def test_array_exhaustion():
    wrapper = make_wrapper(num_objects=3)
    assert run(wrapper, encode_new("A")).ok
    assert run(wrapper, encode_new("B")).ok
    assert run(wrapper, encode_new("C")).status == OODB_NOSPC


def test_root_cannot_be_freed():
    wrapper = make_wrapper()
    assert run(wrapper, encode_free(ROOT_AOID)).status == OODB_BADOP


def test_internal_label_attr_is_protected():
    wrapper = make_wrapper()
    created = run(wrapper, encode_new("A"))
    assert run(wrapper, encode_set(created.aoid, _LABEL_ATTR, 99)).status == OODB_BADOP
    assert run(wrapper, encode_del(created.aoid, _LABEL_ATTR)).status == OODB_BADOP


def test_label_attr_never_leaks_into_abstract_state():
    wrapper = make_wrapper()
    created = run(wrapper, encode_new("A"))
    from repro.oodb.spec import AbstractDBObject

    obj = AbstractDBObject.decode(wrapper.get_obj(1))
    assert _LABEL_ATTR not in obj.attrs


def test_delete_missing_attr():
    wrapper = make_wrapper()
    created = run(wrapper, encode_new("A"))
    assert run(wrapper, encode_del(created.aoid, "ghost")).status == OODB_NOATTR


def test_stale_generation_everywhere():
    wrapper = make_wrapper()
    run(wrapper, encode_new("A"))
    stale = make_aoid(1, 99)
    assert run(wrapper, encode_set(stale, "k", 1)).status == OODB_STALE
    assert run(wrapper, encode_free(stale)).status == OODB_STALE


def test_read_only_rejects_mutations():
    wrapper = make_wrapper()
    assert run(wrapper, encode_new("A"), read_only=True).status != 0
