"""ThorDB implementation: semantics and nondeterminism."""

import pytest

from repro.oodb.db import Ref, ThorDB, ThorError
from repro.util.errors import FaultInjected


@pytest.fixture
def db():
    return ThorDB(disk={}, seed=3)


def test_root_exists(db):
    assert db.exists(db.root())
    assert db.class_of(db.root()) == "Root"


def test_allocate_and_attrs(db):
    handle = db.allocate("Person")
    db.set_attr(handle, "name", "ada")
    db.set_attr(handle, "age", 36)
    assert db.get_attr(handle, "name") == "ada"
    assert db.attrs(handle) == {"name": "ada", "age": 36}


def test_references(db):
    a = db.allocate("A")
    b = db.allocate("B")
    db.set_attr(a, "next", Ref(b))
    assert db.get_attr(a, "next") == Ref(b)


def test_dangling_reference_rejected(db):
    a = db.allocate("A")
    with pytest.raises(ThorError):
        db.set_attr(a, "bad", Ref(0xDEAD))


def test_free(db):
    handle = db.allocate("X")
    db.free(handle)
    assert not db.exists(handle)
    with pytest.raises(ThorError):
        db.get_attr(handle, "a")


def test_cannot_free_root(db):
    with pytest.raises(ThorError):
        db.free(db.root())


def test_free_invalid_handle(db):
    with pytest.raises(ThorError):
        db.free(0x1234)


def test_del_attr(db):
    handle = db.allocate("X")
    db.set_attr(handle, "k", 1)
    db.del_attr(handle, "k")
    assert db.get_attr(handle, "k") is None


def test_handles_are_nondeterministic_across_seeds():
    a = ThorDB(disk={}, seed=1)
    b = ThorDB(disk={}, seed=2)
    assert a.allocate("X") != b.allocate("X")
    assert a.root() != b.root()


def test_state_persists_across_reboot():
    disk = {}
    db = ThorDB(disk=disk, seed=1)
    handle = db.allocate("Keep")
    db.set_attr(handle, "v", 42)
    reborn = ThorDB(disk=disk, seed=99)
    assert reborn.get_attr(handle, "v") == 42


def test_aging_crash_and_reboot_heal():
    disk = {}
    db = ThorDB(disk=disk, seed=1, aging_threshold=500)
    with pytest.raises(FaultInjected):
        for i in range(1000):
            db.allocate("Junk")
    reborn = ThorDB(disk=disk, seed=1, aging_threshold=500)
    assert reborn.exists(reborn.root())
