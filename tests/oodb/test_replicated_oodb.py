"""Replicated OODB (E12): same nondeterministic implementation everywhere,
identical abstract state."""

import pytest

from repro.bft.config import BFTConfig
from repro.oodb import AOid, OODBDeployment, OODBError
from repro.oodb.spec import (
    AbstractDBObject,
    AbstractRef,
    OODB_STALE,
    encode_get,
    encode_new,
    encode_set,
    is_read_only_op,
    make_aoid,
    parse_aoid,
)


@pytest.fixture
def dep():
    return OODBDeployment(
        config=BFTConfig(checkpoint_interval=8, log_window=16), num_objects=32
    )


def roots(dep):
    return {
        rid: dep.cluster.service(rid).current_node(0, 0)[1] for rid in dep.cluster.hosts
    }


class TestSpecEncoding:
    def test_abstract_object_roundtrip(self):
        obj = AbstractDBObject(
            generation=2,
            class_name="Person",
            attrs={"name": "x", "n": 7, "blob": b"\x00\x01", "ref": AbstractRef(make_aoid(3, 1))},
            mtime=123,
        )
        assert AbstractDBObject.decode(obj.encode()) == obj

    def test_null_roundtrip(self):
        obj = AbstractDBObject(generation=9)
        out = AbstractDBObject.decode(obj.encode())
        assert out.is_null and out.generation == 9

    def test_attr_order_is_canonical(self):
        a = AbstractDBObject(generation=1, class_name="C", attrs={"b": 1, "a": 2})
        b = AbstractDBObject(generation=1, class_name="C", attrs={"a": 2, "b": 1})
        assert a.encode() == b.encode()

    def test_read_only_classification(self):
        assert is_read_only_op(encode_get(make_aoid(0, 0)))
        assert not is_read_only_op(encode_new("X"))
        assert not is_read_only_op(encode_set(make_aoid(0, 0), "k", 1))


class TestReplicatedDatabase:
    def test_object_graph_operations(self, dep):
        db = dep.client("C0")
        person = db.new("Person")
        db.set(person, "name", "barbara")
        db.set(db.root, "first", person)
        friend = db.new("Person")
        db.set(person, "friend", friend)
        got = db.get(person)
        assert got["name"] == "barbara"
        assert got["friend"] == friend
        assert db.class_of(person) == "Person"

    def test_aoids_deterministic_despite_random_handles(self, dep):
        db = dep.client("C0")
        first = db.new("A")
        second = db.new("B")
        assert parse_aoid(first.raw) == (1, 1)
        assert parse_aoid(second.raw) == (2, 1)
        w0, w1 = dep.wrapper("R0"), dep.wrapper("R1")
        assert w0.handles[1] != w1.handles[1]  # concrete divergence

    def test_abstract_state_converges(self, dep):
        db = dep.client("C0")
        objs = [db.new("Node") for _ in range(5)]
        for i, obj in enumerate(objs):
            db.set(obj, "i", i)
            if i:
                db.set(objs[i - 1], "next", obj)
        dep.sim.run_for(1.0)
        assert len(set(roots(dep).values())) == 1

    def test_free_and_index_reuse(self, dep):
        db = dep.client("C0")
        a = db.new("A")
        db.free(a)
        b = db.new("B")
        assert parse_aoid(b.raw) == (1, 2)  # reused index, bumped generation
        with pytest.raises(OODBError) as exc:
            db.get(a)
        assert exc.value.status == OODB_STALE

    def test_stale_reference_rejected(self, dep):
        db = dep.client("C0")
        a = db.new("A")
        b = db.new("B")
        db.free(b)
        with pytest.raises(OODBError):
            db.set(a, "r", b)

    def test_delete_attr(self, dep):
        db = dep.client("C0")
        a = db.new("A")
        db.set(a, "k", 1)
        db.delete_attr(a, "k")
        assert "k" not in db.get(a)

    def test_reads_use_read_only_path(self, dep):
        db = dep.client("C0")
        a = db.new("A")
        db.set(a, "k", 5)
        before = [r.last_executed for r in dep.cluster.replicas]
        db.get(a)
        db.class_of(a)
        dep.sim.run_for(0.5)
        after = [r.last_executed for r in dep.cluster.replicas]
        assert before == after  # no ordering traffic for reads

    def test_recovery_converges(self, dep):
        db = dep.client("C0")
        node = db.new("Node")
        for i in range(12):
            db.set(node, f"k{i}", i)
        dep.sim.run_for(1.0)
        host = dep.cluster.hosts["R1"]
        assert host.recover_now()
        dep.sim.run_for(5.0)
        assert host.replica.counters.get("recoveries_completed") == 1
        assert len(set(roots(dep).values())) == 1
        assert db.get(node)["k3"] == 3

    def test_corruption_healed(self, dep):
        db = dep.client("C0")
        node = db.new("Node")
        db.set(node, "precious", b"SAFE")
        dep.sim.run_for(1.0)
        heap = dep.disks["R0"]["thor:heap"]
        victim = dep.wrapper("R0").handles[1]
        heap[victim]["attrs"]["precious"] = b"EVIL"
        host = dep.cluster.hosts["R0"]
        host.recover_now()
        dep.sim.run_for(5.0)
        assert host.replica.counters.get("objects_fetched") >= 1
        assert len(set(roots(dep).values())) == 1

    def test_find_returns_class_extent_in_stable_order(self, dep):
        db = dep.client("C0")
        people = [db.new("Person") for _ in range(3)]
        db.new("Dog")
        found = db.find("Person")
        assert found == people  # creation-index order, not heap order
        assert db.find("Dog") != []
        assert db.find("Unicorn") == []

    def test_find_excludes_freed_objects(self, dep):
        db = dep.client("C0")
        keep = db.new("Person")
        gone = db.new("Person")
        db.free(gone)
        assert db.find("Person") == [keep]

    def test_find_is_read_only(self, dep):
        db = dep.client("C0")
        db.new("Person")
        before = [r.last_executed for r in dep.cluster.replicas]
        db.find("Person")
        dep.sim.run_for(0.5)
        assert [r.last_executed for r in dep.cluster.replicas] == before

    def test_crash_masked(self, dep):
        db = dep.client("C0")
        dep.cluster.crash("R3")
        node = db.new("Node")
        db.set(node, "v", 1)
        assert db.get(node)["v"] == 1
