"""Property-based OODB conformance: any script of database operations run
through two wrappers over differently-seeded ThorDB instances produces
identical replies and abstract states."""

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.oodb.db import ThorDB
from repro.oodb.spec import (
    OODBAbstractSpec,
    ROOT_AOID,
    encode_del,
    encode_free,
    encode_get,
    encode_new,
    encode_set,
    make_aoid,
)
from repro.oodb.wrapper import OODBConformanceWrapper

N_OBJECTS = 12

aoids = st.builds(make_aoid, st.integers(0, N_OBJECTS - 1), st.integers(0, 3)) | st.just(
    ROOT_AOID
)
attr_names = st.sampled_from(["name", "next", "size", "blob"])
classes = st.sampled_from(["Node", "Person", "Doc"])
values = (
    st.integers(-1000, 1000)
    | st.text(max_size=8)
    | st.binary(max_size=8)
)

ops = st.one_of(
    st.builds(encode_new, classes),
    st.builds(encode_free, aoids),
    st.builds(encode_set, aoids, attr_names, values),
    st.builds(encode_del, aoids, attr_names),
    st.builds(encode_get, aoids),
)


def fresh_pair() -> Tuple[OODBConformanceWrapper, OODBConformanceWrapper]:
    return tuple(
        OODBConformanceWrapper(
            ThorDB(disk={}, seed=1000 + i * 37), OODBAbstractSpec(N_OBJECTS), disk={}
        )
        for i in range(2)
    )


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(ops, min_size=1, max_size=20))
def test_oodb_wrappers_agree_on_any_script(script):
    a, b = fresh_pair()
    for step, op in enumerate(script):
        ts = 1_000_000 + step * 1000
        assert a.execute(op, "C0", ts) == b.execute(op, "C0", ts), (
            f"replies diverged at step {step}"
        )
    for index in range(N_OBJECTS):
        assert a.get_obj(index) == b.get_obj(index), f"object {index} diverged"


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(ops, min_size=1, max_size=15))
def test_oodb_transplant_after_any_script(script):
    source, target = fresh_pair()
    for step, op in enumerate(script):
        source.execute(op, "C0", 1_000_000 + step * 1000)
    state = {index: source.get_obj(index) for index in range(N_OBJECTS)}
    spec = OODBAbstractSpec(N_OBJECTS)
    delta = {
        index: blob
        for index, blob in state.items()
        if blob != spec.initial_object(index)
    }
    target.put_objs(delta)
    assert {index: target.get_obj(index) for index in range(N_OBJECTS)} == state


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(ops, min_size=1, max_size=15))
def test_oodb_reconstruction_after_any_script(script):
    disk: dict = {}
    impl = ThorDB(disk=disk, seed=55)
    wrapper = OODBConformanceWrapper(impl, OODBAbstractSpec(N_OBJECTS), disk=disk)
    for step, op in enumerate(script):
        wrapper.execute(op, "C0", 1_000_000 + step * 1000)
    state = {index: wrapper.get_obj(index) for index in range(N_OBJECTS)}
    wrapper.save_for_recovery()
    reborn = OODBConformanceWrapper(
        ThorDB(disk=disk, seed=55), OODBAbstractSpec(N_OBJECTS), disk=disk
    )
    assert {index: reborn.get_obj(index) for index in range(N_OBJECTS)} == state
