"""The ``python -m repro`` / ``repro`` entry point.

Regression: ``repro andrew`` used to run ``examples/andrew_benchmark.py``
through a cwd-relative path, so it crashed from any directory other than the
repository root.  The script must now resolve relative to the package.
"""

from pathlib import Path

import pytest

from repro.__main__ import _andrew_script_path, main


def test_andrew_script_resolves_from_any_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # the old code only worked from the repo root
    script = _andrew_script_path()
    assert script.is_absolute()
    assert script.is_file()
    assert script.name == "andrew_benchmark.py"


def test_andrew_script_matches_repo_copy():
    repo_root = Path(__file__).resolve().parents[1]
    assert _andrew_script_path() == repo_root / "examples" / "andrew_benchmark.py"


def test_version_command(capsys):
    assert main(["version"]) == 0
    out = capsys.readouterr().out.strip()
    assert out and out[0].isdigit()


def test_unknown_command_exits_2(capsys):
    assert main(["frobnicate"]) == 2
    assert "lint" in capsys.readouterr().out  # usage text mentions the linter


def test_lint_subcommand_is_wired(capsys):
    assert main(["lint", "--list-rules"]) == 0
    assert "DET001" in capsys.readouterr().out
