"""The ``python -m repro`` / ``repro`` entry point.

Regression: ``repro andrew`` used to run ``examples/andrew_benchmark.py``
through a cwd-relative path, so it crashed from any directory other than the
repository root.  The script must now resolve relative to the package.
"""

from pathlib import Path

import pytest

from repro.__main__ import _andrew_script_path, main


def test_andrew_script_resolves_from_any_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # the old code only worked from the repo root
    script = _andrew_script_path()
    assert script.is_absolute()
    assert script.is_file()
    assert script.name == "andrew_benchmark.py"


def test_andrew_script_matches_repo_copy():
    repo_root = Path(__file__).resolve().parents[1]
    assert _andrew_script_path() == repo_root / "examples" / "andrew_benchmark.py"


def test_version_command(capsys):
    assert main(["version"]) == 0
    out = capsys.readouterr().out.strip()
    assert out and out[0].isdigit()


def test_unknown_command_exits_2(capsys):
    assert main(["frobnicate"]) == 2
    assert "lint" in capsys.readouterr().out  # usage text mentions the linter


def test_lint_subcommand_is_wired(capsys):
    assert main(["lint", "--list-rules"]) == 0
    assert "DET001" in capsys.readouterr().out


def test_bench_subcommand_is_wired():
    # Usage errors surface as exit 2 without running any scenario.
    assert main(["bench", "--suite", "frobnicate"]) == 2


# -- repro explore / repro replay ----------------------------------------------------


def test_explore_clean_run_exits_0(tmp_path, capsys):
    out = tmp_path / "repro.json"
    code = main(
        ["explore", "--budget", "3", "--seed", "0", "--requests", "10",
         "--quiet", "--out", str(out)]
    )
    assert code == 0
    assert not out.exists()  # no violation, no artifact
    assert "held every safety oracle" in capsys.readouterr().out


def test_explore_planted_bug_exits_1_and_writes_artifact(tmp_path, capsys):
    out = tmp_path / "repro.json"
    code = main(
        ["explore", "--budget", "10", "--seed", "0", "--requests", "16",
         "--plant", "weak-prepare-quorum", "--quiet", "--out", str(out)]
    )
    assert code == 1
    assert out.is_file()
    text = capsys.readouterr().out
    assert "VIOLATION" in text and "repro replay" in text

    # The artifact replays to the same violation, exit code 1.
    capsys.readouterr()
    assert main(["replay", str(out)]) == 1
    assert "reproduces the recorded violation exactly" in capsys.readouterr().out


def test_replay_of_benign_plan_exits_0(tmp_path, capsys):
    """An artifact whose plan no longer violates (e.g. recorded against a
    plant that is not applied) replays clean with exit 0."""
    from repro.explore.oracles import Violation
    from repro.explore.plan import generate_plan
    from repro.explore.shrink import write_artifact

    path = tmp_path / "benign.json"
    write_artifact(
        path,
        generate_plan(0, requests=8),
        Violation(oracle="prefix", detail="recorded elsewhere", time=1.0, event_index=5),
        plant=None,
    )
    assert main(["replay", str(path)]) == 0
    assert "no violation" in capsys.readouterr().out


def test_replay_missing_artifact_exits_2(capsys):
    assert main(["replay", "/no/such/file.json"]) == 2
    assert "no such artifact" in capsys.readouterr().err


def test_replay_malformed_artifact_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"version": 99}')
    assert main(["replay", str(bad)]) == 2
    assert "malformed" in capsys.readouterr().err


def test_explore_usage_error_exits_2(capsys):
    assert main(["explore", "--budget", "0"]) == 2
