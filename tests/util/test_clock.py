"""Virtual clock semantics."""

import pytest

from repro.util.clock import ManualClock


def test_starts_at_zero():
    assert ManualClock().now() == 0.0


def test_advance_accumulates():
    clock = ManualClock()
    clock.advance(1.5)
    clock.advance(0.25)
    assert clock.now() == pytest.approx(1.75)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        ManualClock().advance(-0.1)


def test_set_rejects_backwards():
    clock = ManualClock(start=5.0)
    with pytest.raises(ValueError):
        clock.set(4.0)


def test_now_micros():
    clock = ManualClock(start=1.5)
    assert clock.now_micros() == 1_500_000
