"""The ``python -m repro`` entry point."""

import sys

import pytest

import repro.__main__ as cli


def run_cli(*argv, capsys=None):
    old = sys.argv
    sys.argv = ["repro", *argv]
    try:
        return cli.main()
    finally:
        sys.argv = old


def test_version_command(capsys):
    assert run_cli("version") == 0
    import repro

    assert repro.__version__ in capsys.readouterr().out


def test_unknown_command_prints_usage(capsys):
    assert run_cli("nonsense") == 2
    assert "python -m repro" in capsys.readouterr().out


def test_demo_runs_end_to_end(capsys):
    assert run_cli("demo") == 0
    out = capsys.readouterr().out
    assert "all replicas agree" in out
