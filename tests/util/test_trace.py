"""Tracer: bounded structured event log."""

import pytest

from repro.util.trace import Tracer, emit


def test_emit_and_query():
    tracer = Tracer()
    tracer.emit("R0", "view_change", view=1)
    tracer.emit("R1", "view_change", view=1)
    tracer.emit("R0", "checkpoint", seqno=16)
    assert tracer.count("view_change") == 2
    assert len(tracer.events(source="R0")) == 2
    assert tracer.events(kind="checkpoint")[0].fields == {"seqno": 16}


def test_clock_stamps_events():
    now = {"t": 0.0}
    tracer = Tracer(clock=lambda: now["t"])
    tracer.emit("a", "x")
    now["t"] = 2.5
    tracer.emit("a", "y")
    times = [event.time for event in tracer.events()]
    assert times == [0.0, 2.5]


def test_capacity_bounds_memory():
    tracer = Tracer(capacity=10)
    for i in range(25):
        tracer.emit("a", "tick", i=i)
    assert len(tracer) == 10
    assert tracer.events()[0].fields["i"] == 15


def test_dump_is_readable():
    tracer = Tracer()
    tracer.emit("R0", "recovery_completed", seqno=42)
    text = tracer.dump()
    assert "R0" in text and "recovery_completed" in text and "seqno=42" in text


def test_emit_helper_noop_when_disabled():
    emit(None, "R0", "nothing")  # must not raise


def test_clear():
    tracer = Tracer()
    tracer.emit("a", "x")
    tracer.clear()
    assert len(tracer) == 0


def test_cluster_tracing_end_to_end():
    from repro.bft.config import BFTConfig
    from repro.bft.testing import encode_set, kv_cluster

    cluster = kv_cluster(config=BFTConfig(checkpoint_interval=8, log_window=16))
    # kv_cluster has no trace flag; build one directly for the traced run.
    from repro.bft.cluster import Cluster
    from repro.bft.testing import KVStateMachine

    cluster = Cluster(
        lambda rid: (lambda: KVStateMachine(num_slots=16)),
        config=BFTConfig(checkpoint_interval=8, log_window=16),
        trace=True,
    )
    client = cluster.client("C0")
    for i in range(12):
        client.invoke(encode_set(i % 4, bytes([i])), timeout=60)
    cluster.crash("R0")
    client.invoke(encode_set(0, b"fo"), timeout=60)
    cluster.settle(1.0)
    tracer = cluster.tracer
    assert tracer.count("checkpoint_stable") >= 3
    assert tracer.count("view_change_started") >= 1
    assert tracer.count("view_adopted") >= 3
    adopted = tracer.events(kind="view_adopted")
    assert all(event.fields["view"] == 1 for event in adopted)
