"""XDR codec: round-trips, alignment, and malformed-input rejection."""

import pytest
from hypothesis import given, strategies as st

from repro.util.xdr import U32_MAX, U64_MAX, XdrDecoder, XdrEncoder, XdrError


class TestScalars:
    def test_u32_roundtrip(self):
        enc = XdrEncoder().pack_u32(0).pack_u32(1).pack_u32(U32_MAX)
        dec = XdrDecoder(enc.getvalue())
        assert [dec.unpack_u32() for _ in range(3)] == [0, 1, U32_MAX]
        dec.done()

    def test_u32_range_check(self):
        with pytest.raises(XdrError):
            XdrEncoder().pack_u32(-1)
        with pytest.raises(XdrError):
            XdrEncoder().pack_u32(U32_MAX + 1)

    def test_i32_roundtrip(self):
        enc = XdrEncoder().pack_i32(-(2**31)).pack_i32(2**31 - 1)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_i32() == -(2**31)
        assert dec.unpack_i32() == 2**31 - 1

    def test_u64_roundtrip(self):
        enc = XdrEncoder().pack_u64(U64_MAX)
        assert XdrDecoder(enc.getvalue()).unpack_u64() == U64_MAX

    def test_i64_negative(self):
        enc = XdrEncoder().pack_i64(-123456789012345)
        assert XdrDecoder(enc.getvalue()).unpack_i64() == -123456789012345

    def test_bool_roundtrip(self):
        enc = XdrEncoder().pack_bool(True).pack_bool(False)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_bool() is True
        assert dec.unpack_bool() is False

    def test_bool_rejects_other_values(self):
        with pytest.raises(XdrError):
            XdrDecoder(XdrEncoder().pack_u32(2).getvalue()).unpack_bool()


class TestOpaque:
    def test_opaque_is_padded_to_four_bytes(self):
        data = XdrEncoder().pack_opaque(b"abcde").getvalue()
        assert len(data) == 4 + 8  # length word + 5 bytes padded to 8

    def test_opaque_roundtrip_various_lengths(self):
        for n in range(0, 9):
            blob = bytes(range(n))
            out = XdrDecoder(XdrEncoder().pack_opaque(blob).getvalue()).unpack_opaque()
            assert out == blob

    def test_fixed_opaque_size_mismatch(self):
        with pytest.raises(XdrError):
            XdrEncoder().pack_fixed_opaque(b"abc", 4)

    def test_nonzero_padding_rejected(self):
        enc = XdrEncoder().pack_u32(1)
        corrupted = enc.getvalue() + b"a\x01\x00\x00"
        with pytest.raises(XdrError):
            XdrDecoder(corrupted).unpack_opaque()

    def test_opaque_max_length_enforced(self):
        data = XdrEncoder().pack_opaque(b"12345678").getvalue()
        with pytest.raises(XdrError):
            XdrDecoder(data).unpack_opaque(max_length=4)


class TestStringsAndArrays:
    def test_string_unicode_roundtrip(self):
        text = "héllo/wörld☃"
        assert XdrDecoder(XdrEncoder().pack_string(text).getvalue()).unpack_string() == text

    def test_array_roundtrip(self):
        items = [3, 1, 4, 1, 5]
        enc = XdrEncoder().pack_array(items, lambda e, x: e.pack_u32(x))
        out = XdrDecoder(enc.getvalue()).unpack_array(lambda d: d.unpack_u32())
        assert out == items

    def test_array_max_length(self):
        enc = XdrEncoder().pack_array([1, 2, 3], lambda e, x: e.pack_u32(x))
        with pytest.raises(XdrError):
            XdrDecoder(enc.getvalue()).unpack_array(lambda d: d.unpack_u32(), max_length=2)


class TestStreamDiscipline:
    def test_truncated_stream(self):
        with pytest.raises(XdrError):
            XdrDecoder(b"\x00\x00").unpack_u32()

    def test_done_flags_trailing_bytes(self):
        dec = XdrDecoder(XdrEncoder().pack_u32(1).pack_u32(2).getvalue())
        dec.unpack_u32()
        with pytest.raises(XdrError):
            dec.done()

    def test_empty_stream_done(self):
        XdrDecoder(b"").done()


@given(st.binary(max_size=200), st.integers(0, U64_MAX), st.text(max_size=50))
def test_mixed_roundtrip_property(blob, number, text):
    enc = XdrEncoder().pack_opaque(blob).pack_u64(number).pack_string(text)
    dec = XdrDecoder(enc.getvalue())
    assert dec.unpack_opaque() == blob
    assert dec.unpack_u64() == number
    assert dec.unpack_string() == text
    dec.done()


@given(st.lists(st.binary(max_size=30), max_size=20))
def test_opaque_array_roundtrip_property(blobs):
    enc = XdrEncoder().pack_array(blobs, lambda e, b: e.pack_opaque(b))
    out = XdrDecoder(enc.getvalue()).unpack_array(lambda d: d.unpack_opaque())
    assert out == blobs
