"""Counters: accumulation, snapshots, diffs, merging."""

import pytest

from repro.util.stats import Counters


def test_default_zero():
    assert Counters().get("nothing") == 0


def test_add_and_get():
    c = Counters()
    c.add("msgs")
    c.add("msgs", 4)
    assert c.get("msgs") == 5


def test_negative_add_rejected():
    with pytest.raises(ValueError):
        Counters().add("x", -1)


def test_snapshot_is_decoupled():
    c = Counters()
    c.add("x")
    snap = c.snapshot()
    c.add("x")
    assert snap["x"] == 1
    assert c.get("x") == 2


def test_diff_reports_only_changes():
    c = Counters()
    c.add("a", 2)
    snap = c.snapshot()
    c.add("a", 3)
    c.add("b")
    assert c.diff(snap) == {"a": 3, "b": 1}


def test_merge_sums():
    a, b = Counters(), Counters()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 5)
    a.merge(b)
    assert a.get("x") == 3
    assert a.get("y") == 5


def test_iteration_sorted():
    c = Counters()
    c.add("zeta")
    c.add("alpha")
    assert [name for name, _ in c] == ["alpha", "zeta"]
