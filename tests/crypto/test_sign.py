"""Signature scheme: only the keyholder's signatures verify."""

import pytest

from repro.crypto.sign import SignatureError, SignatureScheme


@pytest.fixture
def scheme():
    return SignatureScheme()


def test_sign_verify_roundtrip(scheme):
    signer = scheme.keygen("R0")
    sig = signer.sign(b"data")
    assert scheme.verify("R0", b"data", sig)


def test_verify_rejects_other_principal(scheme):
    sig = scheme.keygen("R0").sign(b"data")
    assert not scheme.verify("R1", b"data", sig)


def test_verify_rejects_tampered_data(scheme):
    sig = scheme.keygen("R0").sign(b"data")
    assert not scheme.verify("R0", b"datb", sig)


def test_check_raises(scheme):
    with pytest.raises(SignatureError):
        scheme.check("R0", b"data", b"\x00" * 32)


def test_distinct_schemes_do_not_cross_verify():
    a = SignatureScheme(b"secret-a")
    b = SignatureScheme(b"secret-b")
    sig = a.keygen("R0").sign(b"data")
    assert not b.verify("R0", b"data", sig)
