"""MAC authenticators: per-receiver verification and key-epoch refresh."""

import pytest

from repro.crypto.auth import KeyTable, MacVerificationError, mac, verify_mac


@pytest.fixture
def keys():
    return KeyTable()


RECEIVERS = ["R0", "R1", "R2", "R3"]


def test_mac_roundtrip():
    key = b"k" * 32
    tag = mac(key, b"payload")
    assert verify_mac(key, b"payload", tag)
    assert not verify_mac(key, b"payloae", tag)


def test_authenticator_has_entry_per_receiver(keys):
    auth = keys.make_authenticator("C0", RECEIVERS, b"msg")
    assert set(auth.tags) == set(RECEIVERS)


def test_sender_excluded_from_own_authenticator(keys):
    auth = keys.make_authenticator("R0", RECEIVERS, b"msg")
    assert "R0" not in auth.tags


def test_each_receiver_verifies_own_entry(keys):
    auth = keys.make_authenticator("C0", RECEIVERS, b"msg")
    for receiver in RECEIVERS:
        keys.check_authenticator(auth, receiver, b"msg")


def test_wrong_data_fails(keys):
    auth = keys.make_authenticator("C0", RECEIVERS, b"msg")
    with pytest.raises(MacVerificationError):
        keys.check_authenticator(auth, "R1", b"other")


def test_missing_entry_fails(keys):
    auth = keys.make_authenticator("C0", ["R0"], b"msg")
    with pytest.raises(MacVerificationError):
        keys.check_authenticator(auth, "R1", b"msg")


def test_refresh_invalidates_old_macs(keys):
    auth = keys.make_authenticator("C0", RECEIVERS, b"msg")
    keys.refresh("R2")
    keys.check_authenticator(auth, "R1", b"msg")  # others unaffected
    with pytest.raises(MacVerificationError):
        keys.check_authenticator(auth, "R2", b"msg")


def test_new_macs_after_refresh_verify(keys):
    keys.refresh("R2")
    auth = keys.make_authenticator("C0", RECEIVERS, b"msg")
    keys.check_authenticator(auth, "R2", b"msg")


def test_epoch_monotone(keys):
    assert keys.epoch_of("R0") == 0
    assert keys.refresh("R0") == 1
    assert keys.refresh("R0") == 2


def test_keys_differ_per_direction(keys):
    assert keys.key("A", "B") != keys.key("B", "A")
