"""Digest helpers: determinism and combination rules."""

from hypothesis import given, strategies as st

from repro.crypto.digest import DIGEST_SIZE, EMPTY_DIGEST, combine_digests, digest, digest_hex


def test_digest_size():
    assert len(digest(b"x")) == DIGEST_SIZE
    assert len(EMPTY_DIGEST) == DIGEST_SIZE


def test_digest_deterministic():
    assert digest(b"hello") == digest(b"hello")
    assert digest(b"hello") != digest(b"hellp")


def test_digest_hex_matches_digest():
    assert bytes.fromhex(digest_hex(b"abc")) == digest(b"abc")


def test_combine_is_order_sensitive():
    a, b = digest(b"a"), digest(b"b")
    assert combine_digests([a, b]) != combine_digests([b, a])


def test_combine_length_prefix_prevents_ambiguity():
    # Without length prefixes, ["ab","c"] and ["a","bc"] would collide.
    assert combine_digests([b"ab", b"c"]) != combine_digests([b"a", b"bc"])


def test_combine_empty():
    assert len(combine_digests([])) == DIGEST_SIZE


@given(st.lists(st.binary(min_size=32, max_size=32), max_size=10))
def test_combine_deterministic_property(parts):
    assert combine_digests(parts) == combine_digests(list(parts))
