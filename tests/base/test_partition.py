"""Partition tree: shape, digests, lm propagation, snapshots, verification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.base.partition import PartitionTree, verify_children
from repro.crypto.digest import digest


def test_depth_scales_with_object_count():
    assert PartitionTree(8, arity=8).num_levels() == 1
    assert PartitionTree(9, arity=8).num_levels() == 2
    assert PartitionTree(64, arity=8).num_levels() == 2
    assert PartitionTree(65, arity=8).num_levels() == 3


def test_leaf_count_matches_objects():
    tree = PartitionTree(10, arity=4)
    assert tree.nodes_at(tree.num_levels()) == 10


def test_invalid_construction():
    with pytest.raises(ValueError):
        PartitionTree(0)
    with pytest.raises(ValueError):
        PartitionTree(4, arity=1)


def test_update_leaf_changes_root():
    tree = PartitionTree(16, arity=4)
    _, root0 = tree.root()
    tree.update_leaf(5, digest(b"v"), seqno=3)
    _, root1 = tree.root()
    assert root0 != root1


def test_lm_propagates_to_root():
    tree = PartitionTree(16, arity=4)
    tree.update_leaf(5, digest(b"v"), seqno=7)
    lm, _ = tree.root()
    assert lm == 7
    leaf_lm, _ = tree.leaf(5)
    assert leaf_lm == 7


def test_same_updates_same_root():
    a = PartitionTree(16, arity=4)
    b = PartitionTree(16, arity=4)
    for index in (3, 7, 15):
        a.update_leaf(index, digest(bytes([index])), seqno=index)
        b.update_leaf(index, digest(bytes([index])), seqno=index)
    assert a.root() == b.root()


def test_lm_is_part_of_digest():
    a = PartitionTree(4, arity=4)
    b = PartitionTree(4, arity=4)
    a.update_leaf(0, digest(b"v"), seqno=1)
    b.update_leaf(0, digest(b"v"), seqno=2)
    assert a.root()[1] != b.root()[1]


def test_children_verify_against_parent():
    tree = PartitionTree(64, arity=8)
    tree.update_leaf(13, digest(b"x"), seqno=1)
    for level in range(tree.num_levels()):
        for index in range(tree.nodes_at(level)):
            _, parent = tree.node(level, index)
            assert verify_children(parent, tree.children(level, index))


def test_tampered_children_fail_verification():
    tree = PartitionTree(16, arity=4)
    _, parent = tree.node(0, 0)
    children = tree.children(0, 0)
    children[0] = (children[0][0] + 1, children[0][1])
    assert not verify_children(parent, children)


def test_child_range_right_edge():
    tree = PartitionTree(10, arity=4)  # leaves 0..9 under interior nodes 0..3
    level = tree.num_levels() - 1
    assert list(tree.child_range(level, 2)) == [8, 9]  # partial node
    assert list(tree.child_range(level, 3)) == []  # past the leaf count


def test_leaves_have_no_children():
    tree = PartitionTree(4, arity=4)
    with pytest.raises(ValueError):
        tree.child_range(tree.num_levels(), 0)


def test_snapshot_is_immutable_copy():
    tree = PartitionTree(16, arity=4)
    tree.update_leaf(1, digest(b"a"), seqno=1)
    snap = tree.snapshot()
    root_before = snap.root()
    tree.update_leaf(1, digest(b"b"), seqno=2)
    assert snap.root() == root_before
    assert tree.root() != root_before
    assert snap.children(0, 0) is not None
    assert snap.leaf(1)[0] == 1


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.binary(min_size=1, max_size=8), st.integers(1, 100)),
        max_size=30,
    )
)
def test_root_depends_only_on_final_leaf_state(updates):
    """Property: the root is a pure function of the final (digest, lm) leaf
    vector, independent of update order/history."""
    tree = PartitionTree(31, arity=4)
    final = {}
    for index, blob, seqno in updates:
        tree.update_leaf(index, digest(blob), seqno)
        final[index] = (digest(blob), seqno)
    fresh = PartitionTree(31, arity=4)
    for index, (d, seqno) in final.items():
        fresh.update_leaf(index, d, seqno)
    assert tree.root() == fresh.root()
