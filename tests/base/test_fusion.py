"""Property tests for the GF(256) fusion codec (ISSUE 10 satellite).

Covers: cell/block round-trips, reconstruction from every <= t erasure
pattern byte-identically, loud failure beyond t erasures, stripe-boundary
and empty-object edge cases.
"""

import itertools
import random

import pytest

from repro.base.fusion import (
    FusionCodec,
    FusionError,
    cell_width_for,
    decode_cell,
    encode_cell,
    gf_div,
    gf_inv,
    gf_mul,
    pack_block,
    unpack_block,
    xor_bytes,
)


# -- field arithmetic ---------------------------------------------------------------


def test_gf_field_axioms():
    rng = random.Random(7)
    for _ in range(200):
        a = rng.randrange(1, 256)
        b = rng.randrange(1, 256)
        c = rng.randrange(1, 256)
        assert gf_mul(a, b) == gf_mul(b, a)
        assert gf_mul(a, gf_mul(b, c)) == gf_mul(gf_mul(a, b), c)
        assert gf_mul(a, 1) == a
        assert gf_mul(a, gf_inv(a)) == 1
        assert gf_div(gf_mul(a, b), b) == a


def test_gf_inv_zero_is_loud():
    with pytest.raises(FusionError):
        gf_inv(0)


# -- cells --------------------------------------------------------------------------


def test_cell_round_trip():
    rng = random.Random(11)
    for _ in range(50):
        value = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 40)))
        lm = rng.randrange(0, 2**40)
        width = cell_width_for(len(value)) + rng.randrange(0, 8)
        assert decode_cell(encode_cell(lm, value, width)) == (lm, value)


def test_cell_empty_value():
    # Empty abstract objects (the genesis KV slots) are a legal cell.
    cell = encode_cell(0, b"", 16)
    assert len(cell) == 16
    assert decode_cell(cell) == (0, b"")


def test_cell_exact_stripe_boundary():
    # Value exactly filling the slot: no padding byte at all.
    value = b"x" * 20
    width = cell_width_for(len(value))
    cell = encode_cell(5, value, width)
    assert len(cell) == width
    assert decode_cell(cell) == (5, value)
    # One byte over is loud, not truncated.
    with pytest.raises(FusionError):
        encode_cell(5, value + b"y", width)


def test_cell_rejects_garbage():
    with pytest.raises(FusionError):
        decode_cell(b"\x00" * 4)  # shorter than header
    good = encode_cell(1, b"ab", 20)
    with pytest.raises(FusionError):
        decode_cell(good[:-1] + b"\x01")  # nonzero padding
    bad_len = good[:8] + (1000).to_bytes(4, "big") + good[12:]
    with pytest.raises(FusionError):
        decode_cell(bad_len)  # length field beyond the cell


def test_block_round_trip():
    leaves = [(3, b"alpha"), (0, b""), (9, b"long-ish value here")]
    width = cell_width_for(max(len(v) for _, v in leaves))
    block = pack_block(leaves, width)
    assert len(block) == width * len(leaves)
    assert unpack_block(block, width, len(leaves)) == leaves
    with pytest.raises(FusionError):
        unpack_block(block + b"\x00", width, len(leaves))


# -- the codec ----------------------------------------------------------------------


def _random_blocks(rng, count, width):
    return [bytes(rng.randrange(256) for _ in range(width)) for _ in range(count)]


@pytest.mark.parametrize("num_data,num_parity", [(2, 1), (4, 1), (3, 2), (4, 3)])
def test_reconstruct_all_erasure_patterns(num_data, num_parity):
    """Any <= t erased shares (data or parity) reconstruct byte-identically."""
    rng = random.Random(num_data * 31 + num_parity)
    blocks = _random_blocks(rng, num_data, 48)
    codec = FusionCodec(num_data, num_parity)
    parity = codec.encode(blocks)
    shares = {i: b for i, b in enumerate(blocks)}
    shares.update({num_data + j: p for j, p in enumerate(parity)})
    total = num_data + num_parity
    for erased_count in range(0, num_parity + 1):
        for erased in itertools.combinations(range(total), erased_count):
            surviving = {i: shares[i] for i in range(total) if i not in erased}
            assert codec.reconstruct(surviving) == blocks, (
                f"erasing {erased} of {total} shares did not round-trip"
            )


@pytest.mark.parametrize("num_data,num_parity", [(2, 1), (4, 1), (3, 2)])
def test_too_many_erasures_fails_loudly(num_data, num_parity):
    """> t erasures must raise, never return a silently wrong answer."""
    rng = random.Random(99)
    blocks = _random_blocks(rng, num_data, 32)
    codec = FusionCodec(num_data, num_parity)
    parity = codec.encode(blocks)
    shares = {i: b for i, b in enumerate(blocks)}
    shares.update({num_data + j: p for j, p in enumerate(parity)})
    total = num_data + num_parity
    for erased in itertools.combinations(range(total), num_parity + 1):
        surviving = {i: shares[i] for i in range(total) if i not in erased}
        with pytest.raises(FusionError):
            codec.reconstruct(surviving)


def test_single_parity_degenerates_consistently():
    # t=1 must still reconstruct any single loss, including the parity.
    rng = random.Random(3)
    blocks = _random_blocks(rng, 4, 24)
    codec = FusionCodec(4, 1)
    parity = codec.encode(blocks)
    assert len(parity) == 1
    shares = {i: b for i, b in enumerate(blocks)}
    shares[4] = parity[0]
    for lost in range(4):
        surviving = {i: v for i, v in shares.items() if i != lost}
        assert codec.reconstruct_one(surviving, lost) == blocks[lost]


def test_delta_update_matches_full_reencode():
    """Incremental parity maintenance == re-encoding from scratch."""
    rng = random.Random(17)
    num_data, width, slot = 4, 60, 20
    blocks = _random_blocks(rng, num_data, width)
    codec = FusionCodec(num_data, 2)
    parity = codec.encode(blocks)
    for _ in range(25):
        which = rng.randrange(num_data)
        offset = rng.randrange(0, width // slot) * slot
        new_cell = bytes(rng.randrange(256) for _ in range(slot))
        old = blocks[which]
        new = old[:offset] + new_cell + old[offset + slot :]
        delta = xor_bytes(old[offset : offset + slot], new_cell)
        blocks[which] = new
        parity = [
            codec.delta_update(j, parity[j], which, delta, offset)
            for j in range(2)
        ]
        assert parity == codec.encode(blocks)


def test_width_mismatch_is_loud():
    codec = FusionCodec(2, 1)
    with pytest.raises(FusionError):
        codec.encode([b"aa", b"bbb"])
    with pytest.raises(FusionError):
        codec.reconstruct({0: b"aa", 2: b"bbb"})
    with pytest.raises(FusionError):
        xor_bytes(b"aa", b"bbb")


def test_codec_parameter_validation():
    with pytest.raises(FusionError):
        FusionCodec(0, 1)
    with pytest.raises(FusionError):
        FusionCodec(1, 0)
    with pytest.raises(FusionError):
        FusionCodec(200, 100)
    codec = FusionCodec(2, 1)
    with pytest.raises(FusionError):
        codec.reconstruct({0: b"aa", 7: b"aa"})  # share index out of range
    with pytest.raises(FusionError):
        codec.reconstruct_one({0: b"aa", 1: b"aa"}, 5)


def test_empty_objects_stripe():
    """A whole shard of empty objects (genesis state) round-trips."""
    slot = cell_width_for(0)
    leaves = [(0, b"")] * 5
    blocks = [pack_block(leaves, slot) for _ in range(3)]
    codec = FusionCodec(3, 1)
    parity = codec.encode(blocks)
    rebuilt = codec.reconstruct_one(
        {1: blocks[1], 2: blocks[2], 3: parity[0]}, 0
    )
    assert rebuilt == blocks[0]
    assert unpack_block(rebuilt, slot, 5) == leaves
