"""Shard map: deterministic contiguous-range partition of the object space."""

import pytest

from repro.base.shardmap import ShardMap


def test_contiguous_ranges_cover_the_space_exactly():
    smap = ShardMap(4, 32)
    covered = []
    for shard in range(4):
        lo, hi = smap.shard_range(shard)
        assert hi - lo == 8
        covered.extend(range(lo, hi))
    assert covered == list(range(32))


def test_shard_of_and_local_index_agree_with_ranges():
    smap = ShardMap(4, 32)
    for index in range(32):
        shard = smap.shard_of(index)
        lo, _hi = smap.shard_range(shard)
        assert smap.local_index(index) == index - lo
        assert smap.global_index(shard, smap.local_index(index)) == index


def test_single_shard_is_the_identity_map():
    smap = ShardMap(1, 16)
    for index in range(16):
        assert smap.shard_of(index) == 0
        assert smap.local_index(index) == index
        assert smap.global_index(0, index) == index


def test_requires_even_divisibility():
    with pytest.raises(ValueError):
        ShardMap(3, 32)


def test_invalid_construction():
    with pytest.raises(ValueError):
        ShardMap(0, 8)
    with pytest.raises(ValueError):
        ShardMap(2, 0)


def test_bounds_are_checked():
    smap = ShardMap(2, 16)
    with pytest.raises(ValueError):
        smap.shard_of(16)
    with pytest.raises(ValueError):
        smap.shard_of(-1)
    with pytest.raises(ValueError):
        smap.local_index(16)
    with pytest.raises(ValueError):
        smap.global_index(2, 0)
    with pytest.raises(ValueError):
        smap.global_index(0, 8)
    with pytest.raises(ValueError):
        smap.shard_range(2)
