"""Abstract-state manager: COW checkpoints, reads-at-checkpoint, installs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.base.statemgr import AbstractStateManager
from repro.crypto.digest import digest


class Store:
    """Backing array standing in for a wrapped implementation."""

    def __init__(self, n):
        self.cells = [b""] * n

    def get(self, index):
        return self.cells[index]


@pytest.fixture
def rig():
    store = Store(16)
    mgr = AbstractStateManager(16, store.get, arity=4)
    return store, mgr


def write(store, mgr, index, value):
    mgr.modify(index)
    store.cells[index] = value


def test_initial_root_is_deterministic():
    a = AbstractStateManager(16, Store(16).get, arity=4)
    b = AbstractStateManager(16, Store(16).get, arity=4)
    assert a.tree.root() == b.tree.root()


def test_modify_out_of_range(rig):
    _store, mgr = rig
    with pytest.raises(IndexError):
        mgr.modify(mgr.total_leaves)
    mgr.modify(mgr.total_leaves - 1)  # client-table shards are valid leaves


def test_checkpoint_digest_reflects_writes(rig):
    store, mgr = rig
    d0 = mgr.take_checkpoint(10)
    write(store, mgr, 3, b"x")
    d1 = mgr.take_checkpoint(20)
    assert d0 != d1


def test_checkpoint_seqnos_must_increase(rig):
    _store, mgr = rig
    mgr.take_checkpoint(10)
    with pytest.raises(ValueError):
        mgr.take_checkpoint(10)


def test_cow_preserves_value_at_checkpoint(rig):
    store, mgr = rig
    write(store, mgr, 5, b"old")
    mgr.take_checkpoint(10)
    write(store, mgr, 5, b"new")
    assert mgr.get_object_at(10, 5) == b"old"
    assert store.cells[5] == b"new"


def test_unmodified_object_read_through(rig):
    store, mgr = rig
    write(store, mgr, 2, b"stable")
    mgr.take_checkpoint(10)
    assert mgr.get_object_at(10, 2) == b"stable"


def test_multi_checkpoint_cow_scan(rig):
    store, mgr = rig
    write(store, mgr, 1, b"v1")
    mgr.take_checkpoint(10)          # value at 10 is v1
    write(store, mgr, 1, b"v2")
    mgr.take_checkpoint(20)          # value at 20 is v2
    write(store, mgr, 1, b"v3")
    assert mgr.get_object_at(10, 1) == b"v1"
    assert mgr.get_object_at(20, 1) == b"v2"


def test_object_unchanged_between_checkpoints(rig):
    store, mgr = rig
    write(store, mgr, 1, b"v1")
    mgr.take_checkpoint(10)
    mgr.take_checkpoint(20)
    write(store, mgr, 1, b"v2")
    # Copy lives in checkpoint 20; checkpoint 10 must see it too.
    assert mgr.get_object_at(10, 1) == b"v1"


def test_get_object_at_unknown_checkpoint(rig):
    _store, mgr = rig
    assert mgr.get_object_at(99, 0) is None


def test_modify_only_copies_once(rig):
    store, mgr = rig
    mgr.take_checkpoint(10)
    write(store, mgr, 4, b"a")
    write(store, mgr, 4, b"b")
    assert mgr.counters.get("cow_copies") == 1
    assert mgr.get_object_at(10, 4) == b""


def test_discard_checkpoints(rig):
    _store, mgr = rig
    mgr.take_checkpoint(10)
    mgr.take_checkpoint(20)
    mgr.discard_checkpoints_below(20)
    assert mgr.checkpoint_seqnos() == [20]
    assert mgr.get_object_at(10, 0) is None


def test_root_digest_stable_across_later_writes(rig):
    store, mgr = rig
    write(store, mgr, 7, b"x")
    d = mgr.take_checkpoint(10)
    write(store, mgr, 7, b"y")
    assert mgr.root_digest(10) == d


def test_meta_matches_checkpoint_tree(rig):
    store, mgr = rig
    write(store, mgr, 0, b"z")
    mgr.take_checkpoint(10)
    children = mgr.get_meta(10, 0, 0)
    assert children is not None
    assert len(children) == 4


def test_install_fetched_applies_and_checkpoints(rig):
    store, mgr = rig
    applied = {}

    def apply(values):
        applied.update(values)
        for index, value in values.items():
            store.cells[index] = value

    root = mgr.install_fetched({3: (b"fetched", 5)}, seqno=40, apply_objects=apply)
    assert applied == {3: b"fetched"}
    assert store.cells[3] == b"fetched"
    assert mgr.checkpoint_seqnos() == [40]
    assert mgr.root_digest(40) == root
    assert mgr.tree.leaf(3) == (5, digest(b"fetched"))


def test_install_fetched_matches_donor_root():
    """Donor and fetcher converge to identical roots after a transfer."""
    donor_store, donor = Store(16), None
    donor = AbstractStateManager(16, donor_store.get, arity=4)
    for index in (1, 5, 9):
        donor.modify(index)
        donor_store.cells[index] = bytes([index]) * 3
    donor_root = donor.take_checkpoint(10)

    fetcher_store = Store(16)
    fetcher = AbstractStateManager(16, fetcher_store.get, arity=4)

    def apply(values):
        for index, value in values.items():
            fetcher_store.cells[index] = value

    objects = {
        index: (donor.get_object_at(10, index), donor.tree.leaf(index)[0])
        for index in (1, 5, 9)
    }
    root = fetcher.install_fetched(objects, 10, apply)
    assert root == donor_root


def test_set_leaf_lm_keeps_digest(rig):
    store, mgr = rig
    write(store, mgr, 2, b"q")
    mgr.take_checkpoint(10)
    _, d = mgr.tree.leaf(2)
    mgr.set_leaf_lm(2, 77)
    assert mgr.tree.leaf(2) == (77, d)


def test_reset_to_current_recomputes(rig):
    store, mgr = rig
    write(store, mgr, 2, b"q")
    mgr.take_checkpoint(10)
    store.cells[2] = b"corrupted-behind-our-back"
    mgr.reset_to_current()
    assert mgr.checkpoint_seqnos() == []
    assert mgr.tree.leaf(2)[1] == digest(b"corrupted-behind-our-back")


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.binary(max_size=6)),
        min_size=1,
        max_size=40,
    )
)
def test_checkpoint_reads_are_frozen_property(writes):
    """Property: reads at a checkpoint always return the value the object had
    when the checkpoint was taken, whatever happens afterwards."""
    store = Store(8)
    mgr = AbstractStateManager(8, store.get, arity=2)
    mid = len(writes) // 2
    for index, value in writes[:mid]:
        mgr.modify(index)
        store.cells[index] = value
    frozen = list(store.cells)
    mgr.take_checkpoint(10)
    for index, value in writes[mid:]:
        mgr.modify(index)
        store.cells[index] = value
    for index in range(8):
        assert mgr.get_object_at(10, index) == frozen[index]
