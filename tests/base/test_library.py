"""BASEService: the glue between a conformance wrapper and the engine."""

import pytest

from repro.base.abstraction import AbstractSpec
from repro.base.library import BASEService
from repro.base.wrapper import ConformanceWrapper
from repro.bft.nondet import decode_timestamp, encode_timestamp
from repro.util.clock import ManualClock
from repro.util.xdr import XdrEncoder


class TinySpec(AbstractSpec):
    def __init__(self, num_objects=4):
        self.num_objects = num_objects

    def initial_object(self, index):
        return b""


class TinyWrapper(ConformanceWrapper):
    """Stores one byte string per object; op = XDR(index, value)."""

    def __init__(self):
        super().__init__(TinySpec())
        self.values = [b""] * self.spec.num_objects
        self.seen_timestamps = []
        self.saved = 0

    def execute(self, op, client_id, timestamp_micros, read_only=False):
        from repro.util.xdr import XdrDecoder

        dec = XdrDecoder(op)
        index = dec.unpack_u32()
        value = dec.unpack_opaque()
        self.seen_timestamps.append(timestamp_micros)
        if read_only:
            return self.values[index]
        self.modify(index)
        self.values[index] = value
        return b"ok"

    def get_obj(self, index):
        return self.values[index]

    def put_objs(self, objects):
        for index, value in objects.items():
            self.values[index] = value

    def save_for_recovery(self):
        self.saved += 1


def op(index, value=b"x"):
    return XdrEncoder().pack_u32(index).pack_opaque(value).getvalue()


@pytest.fixture
def service():
    return BASEService(TinyWrapper(), ManualClock(start=5.0), arity=2)


def test_execute_decodes_agreed_timestamp(service):
    service.execute(op(0), "C0", encode_timestamp(7_000_000))
    assert service.wrapper.seen_timestamps == [7_000_000]


def test_read_only_gets_zero_timestamp(service):
    service.execute(op(0), "C0", b"", read_only=True)
    assert service.wrapper.seen_timestamps == [0]


def test_nondet_round_trip(service):
    proposal = service.propose_nondet()
    assert service.check_nondet(proposal)
    assert decode_timestamp(proposal) == 5_000_000


def test_check_rejects_garbage_nondet(service):
    assert not service.check_nondet(b"nope")


def test_modify_wired_into_wrapper(service):
    service.execute(op(1, b"new"), "C0", encode_timestamp(6_000_000))
    service.take_checkpoint(10)
    service.execute(op(1, b"newer"), "C0", encode_timestamp(6_100_000))
    assert service.get_object_at(10, 1) == b"new"


def test_checkpoint_and_root_digest(service):
    digest_a = service.take_checkpoint(10)
    assert service.root_digest(10) == digest_a
    service.execute(op(2, b"dirty"), "C0", encode_timestamp(6_000_000))
    digest_b = service.take_checkpoint(20)
    assert digest_a != digest_b
    assert service.checkpoint_seqnos() == [10, 20]
    service.discard_checkpoints_below(20)
    assert service.checkpoint_seqnos() == [20]


def test_genesis_digest_is_cached_and_matches_fresh_state(service):
    genesis = service.genesis_root_digest()
    assert genesis == service.genesis_root_digest()  # cached
    assert service.current_node(0, 0)[1] == genesis  # fresh service == genesis


def test_install_fetched_routes_through_put_objs(service):
    root = service.install_fetched({1: (b"installed", 3)}, seqno=30)
    assert service.wrapper.values[1] == b"installed"
    assert service.root_digest(30) == root


def test_record_reply_round_trip(service):
    assert service.last_recorded("C9") is None
    service.record_reply("C9", 4, b"res")
    assert service.last_recorded("C9") == (4, b"res")


def test_save_for_recovery_delegates(service):
    service.save_for_recovery()
    assert service.wrapper.saved == 1


def test_wrapper_base_defaults():
    wrapper = TinyWrapper()
    wrapper.modify(1)  # default callback: no-op, must not raise
    assert wrapper.spec.validate_object(0, b"anything")  # default: True
