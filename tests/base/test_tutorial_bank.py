"""The docs/wrapping-a-service.md tutorial, verbatim and executable.

A toy bank service wrapped with BASE: demonstrates that the public API
generalizes beyond the NFS and OODB examples, and keeps the tutorial honest.
"""

import pytest

from repro.base.abstraction import AbstractSpec
from repro.base.library import BASEService
from repro.base.wrapper import ConformanceWrapper
from repro.bft.cluster import Cluster
from repro.bft.config import BFTConfig
from repro.util.xdr import XdrDecoder, XdrEncoder


# --- Step 1: the abstract specification ------------------------------------------


class BankSpec(AbstractSpec):
    def __init__(self, num_accounts=16):
        self.num_objects = num_accounts

    def initial_object(self, index):
        return XdrEncoder().pack_i64(0).getvalue()


# --- An "off-the-shelf" ledger implementation --------------------------------------


class Ledger:
    """A vendor ledger: append-only journal + derived balances, with its own
    notion of transaction timestamps (ignored by the abstract spec)."""

    def __init__(self, disk=None):
        self.disk = disk if disk is not None else {}
        self.disk.setdefault("journal", [])

    def deposit(self, account, amount, when):
        self.disk["journal"].append((account, amount, when))

    def balance(self, account):
        return sum(
            amount for acct, amount, _when in self.disk["journal"] if acct == account
        )

    def force_balance(self, account, balance):
        """Administrative reset used by state installs."""
        current = self.balance(account)
        if balance != current:
            self.disk["journal"].append((account, balance - current, 0))


# --- Step 2: the conformance wrapper --------------------------------------------------


class BankWrapper(ConformanceWrapper):
    def __init__(self, ledger, spec):
        super().__init__(spec)
        self.ledger = ledger

    def execute(self, op, client_id, timestamp_micros, read_only=False):
        dec = XdrDecoder(op)
        command = dec.unpack_string()
        account = dec.unpack_u32()
        if account >= self.spec.num_objects:
            return b"ERR bad account"
        if command == "BALANCE":
            return XdrEncoder().pack_i64(self.ledger.balance(account)).getvalue()
        if read_only:
            return b"ERR read-only"
        amount = dec.unpack_i64()
        self.modify(account)
        self.ledger.deposit(account, amount, when=timestamp_micros)
        return XdrEncoder().pack_i64(self.ledger.balance(account)).getvalue()

    def get_obj(self, index):
        return XdrEncoder().pack_i64(self.ledger.balance(index)).getvalue()

    def put_objs(self, objects):
        for index, blob in objects.items():
            balance = XdrDecoder(blob).unpack_i64()
            self.ledger.force_balance(index, balance)


# --- ops ------------------------------------------------------------------------------


def deposit_op(account, amount):
    return (
        XdrEncoder().pack_string("DEPOSIT").pack_u32(account).pack_i64(amount).getvalue()
    )


def balance_op(account):
    return XdrEncoder().pack_string("BALANCE").pack_u32(account).getvalue()


# --- Step 3: deploy ----------------------------------------------------------------------


def bank_cluster():
    disks = {}
    from repro.net.simulator import Simulator

    sim = Simulator(seed=0)

    def factory_for(replica_id):
        disks.setdefault(replica_id, {})

        def make():
            return BASEService(
                BankWrapper(Ledger(disk=disks[replica_id]), BankSpec()), sim.clock
            )

        return make

    cluster = Cluster(
        factory_for, config=BFTConfig(checkpoint_interval=8, log_window=16), sim=sim
    )
    return cluster, disks


def decode_balance(blob):
    return XdrDecoder(blob).unpack_i64()


def test_deposits_and_balances():
    cluster, _disks = bank_cluster()
    teller = cluster.client("teller-1")
    assert decode_balance(teller.invoke(deposit_op(3, 100))) == 100
    assert decode_balance(teller.invoke(deposit_op(3, -30))) == 70
    assert decode_balance(teller.invoke(balance_op(3), read_only=True)) == 70
    assert decode_balance(teller.invoke(balance_op(5), read_only=True)) == 0


def test_bank_masks_a_crash():
    cluster, _disks = bank_cluster()
    teller = cluster.client("teller-1")
    teller.invoke(deposit_op(1, 10))
    cluster.crash("R2")
    assert decode_balance(teller.invoke(deposit_op(1, 5), timeout=30)) == 15


def test_bank_state_transfer():
    cluster, _disks = bank_cluster()
    teller = cluster.client("teller-1")
    cluster.crash("R3")
    for i in range(30):
        teller.invoke(deposit_op(i % 4, 1), timeout=60)
    cluster.restart("R3")
    cluster.settle(5.0)
    service = cluster.service("R3")
    assert decode_balance(service.wrapper.get_obj(0)) == 8


def test_bank_proactive_recovery_heals_corruption():
    cluster, disks = bank_cluster()
    teller = cluster.client("teller-1")
    for i in range(20):
        teller.invoke(deposit_op(2, 10), timeout=60)
    cluster.settle(1.0)
    # Cook R1's books.
    disks["R1"]["journal"].append((2, 999_999, 0))
    host = cluster.hosts["R1"]
    assert host.recover_now()
    cluster.settle(5.0)
    assert host.replica.counters.get("recoveries_completed") == 1
    assert decode_balance(cluster.service("R1").wrapper.get_obj(2)) == 200


def test_replicas_agree_despite_journal_divergence():
    """The vendors' journals differ (force_balance entries, orders), but the
    abstract state — the balances — is identical."""
    cluster, disks = bank_cluster()
    teller = cluster.client("teller-1")
    for i in range(12):
        teller.invoke(deposit_op(i % 3, i), timeout=60)
    cluster.settle(1.0)
    roots = {rid: cluster.service(rid).current_node(0, 0)[1] for rid in cluster.hosts}
    assert len(set(roots.values())) == 1
