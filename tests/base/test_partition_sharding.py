"""Partition-tree behaviour the sharded deployment leans on: per-range
subtree digests, batched updates that straddle shard boundaries, and
reads-at-checkpoint probed at shard-edge indices."""

from repro.base.partition import PartitionTree, verify_children
from repro.base.shardmap import ShardMap
from repro.base.statemgr import AbstractStateManager
from repro.crypto.digest import digest

#: Four shards of four objects each, aligned with an arity-4 tree: every
#: level-1 interior node covers exactly one shard's range.
_SHARDS = ShardMap(4, 16)


def _tree():
    return PartitionTree(16, arity=4)


def _fill(tree, shard, tag, seqno=1):
    lo, hi = _SHARDS.shard_range(shard)
    for index in range(lo, hi):
        tree.update_leaf(index, digest(tag + bytes([index])), seqno=seqno)


def test_aligned_subtree_digest_is_a_per_range_root():
    """When shard ranges align with interior-node spans, the interior digest
    is a commitment to exactly that shard's objects: equal content -> equal
    per-range root, independent of what the other shards hold."""
    a, b = _tree(), _tree()
    _fill(a, 0, b"same")
    _fill(b, 0, b"same")
    _fill(a, 1, b"only-a")
    _fill(b, 1, b"only-b")
    assert a.node(1, 0) == b.node(1, 0)
    assert a.node(1, 1) != b.node(1, 1)
    assert a.root() != b.root()


def test_subtree_digest_verifies_against_its_children():
    tree = _tree()
    _fill(tree, 2, b"v")
    _lm, range_root = tree.node(1, 2)
    assert verify_children(range_root, tree.children(1, 2))


def test_update_leaves_across_shard_boundaries_matches_per_leaf():
    """One batched update spanning the shard-0/shard-1 and shard-1/shard-2
    boundaries produces the identical root as per-leaf updates."""
    batched, serial = _tree(), _tree()
    lo1, _ = _SHARDS.shard_range(1)
    lo2, _ = _SHARDS.shard_range(2)
    updates = [
        (lo1 - 1, digest(b"edge-a"), 5),
        (lo1, digest(b"edge-b"), 5),
        (lo2 - 1, digest(b"edge-c"), 5),
        (lo2, digest(b"edge-d"), 5),
    ]
    batched.update_leaves(updates)
    for index, value, seqno in updates:
        serial.update_leaf(index, value, seqno)
    assert batched.root() == serial.root()
    # The straddled ranges changed; the untouched shard-3 range did not.
    assert batched.node(1, 3) == _tree().node(1, 3)


def test_update_leaves_later_duplicate_wins_at_a_boundary():
    tree, expected = _tree(), _tree()
    lo1, _ = _SHARDS.shard_range(1)
    tree.update_leaves(
        [(lo1, digest(b"stale"), 3), (lo1 - 1, digest(b"x"), 3), (lo1, digest(b"fresh"), 3)]
    )
    expected.update_leaf(lo1 - 1, digest(b"x"), 3)
    expected.update_leaf(lo1, digest(b"fresh"), 3)
    assert tree.root() == expected.root()


class _Store:
    def __init__(self, n):
        self.cells = [b""] * n

    def get(self, index):
        return self.cells[index]


def test_get_object_at_bisects_shard_edge_history():
    """Reads-at-checkpoint for the first/last objects of a shard range: the
    bisect over COW labels must return the value each edge object held at
    every retained checkpoint, exactly where per-shard state transfer and the
    cross-shard oracles probe."""
    store = _Store(16)
    mgr = AbstractStateManager(16, store.get, arity=4)
    last_of_shard0 = _SHARDS.shard_range(0)[1] - 1
    first_of_shard1 = _SHARDS.shard_range(1)[0]

    def write(index, value):
        mgr.modify(index)
        store.cells[index] = value

    write(last_of_shard0, b"s0@10")
    write(first_of_shard1, b"s1@10")
    mgr.take_checkpoint(10)
    write(last_of_shard0, b"s0@20")
    mgr.take_checkpoint(20)
    write(first_of_shard1, b"s1@30")
    mgr.take_checkpoint(30)

    assert mgr.get_object_at(10, last_of_shard0) == b"s0@10"
    assert mgr.get_object_at(20, last_of_shard0) == b"s0@20"
    assert mgr.get_object_at(30, last_of_shard0) == b"s0@20"
    assert mgr.get_object_at(10, first_of_shard1) == b"s1@10"
    assert mgr.get_object_at(20, first_of_shard1) == b"s1@10"
    assert mgr.get_object_at(30, first_of_shard1) == b"s1@30"
    # Labels that were never checkpointed are not readable.
    assert mgr.get_object_at(15, last_of_shard0) is None
