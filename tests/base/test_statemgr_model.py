"""Model-based property test: the state manager against a brute-force model.

The model keeps a *full copy* of the object array at every checkpoint; the
manager keeps COW deltas.  Under arbitrary interleavings of writes,
checkpoints, and garbage collection, ``get_object_at`` must always agree
with the model — the correctness core of the paper's incremental
checkpointing scheme."""

from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.base.statemgr import AbstractStateManager

N_OBJECTS = 6


class Model:
    """Brute force: full snapshots."""

    def __init__(self) -> None:
        self.current = [b""] * N_OBJECTS
        self.snapshots: Dict[int, List[bytes]] = {}

    def write(self, index: int, value: bytes) -> None:
        self.current[index] = value

    def checkpoint(self, seqno: int) -> None:
        self.snapshots[seqno] = list(self.current)

    def discard_below(self, seqno: int) -> None:
        for label in [s for s in self.snapshots if s < seqno]:
            del self.snapshots[label]


commands = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, N_OBJECTS - 1), st.binary(max_size=6)),
        st.tuples(st.just("checkpoint"), st.just(0), st.just(b"")),
        st.tuples(st.just("discard"), st.just(0), st.just(b"")),
    ),
    min_size=1,
    max_size=50,
)


@settings(max_examples=60, deadline=None)
@given(script=commands)
def test_manager_matches_model(script):
    store = [b""] * N_OBJECTS
    manager = AbstractStateManager(N_OBJECTS, lambda i: store[i], arity=2)
    model = Model()
    next_seqno = 1

    for command, index, value in script:
        if command == "write":
            manager.modify(index)
            store[index] = value
            model.write(index, value)
        elif command == "checkpoint":
            manager.take_checkpoint(next_seqno)
            model.checkpoint(next_seqno)
            next_seqno += 1
        elif command == "discard" and model.snapshots:
            newest = max(model.snapshots)
            manager.discard_checkpoints_below(newest)
            model.discard_below(newest)

        # Invariant: every live checkpoint reads back exactly the model.
        assert manager.checkpoint_seqnos() == sorted(model.snapshots)
        for seqno, snapshot in model.snapshots.items():
            for i in range(N_OBJECTS):
                assert manager.get_object_at(seqno, i) == snapshot[i], (
                    f"checkpoint {seqno} object {i} diverged from model"
                )


@settings(max_examples=40, deadline=None)
@given(script=commands)
def test_checkpoint_digests_deterministic(script):
    """Two managers fed the same script produce identical root digests at
    every checkpoint (the cross-replica agreement requirement)."""

    def run():
        store = [b""] * N_OBJECTS
        manager = AbstractStateManager(N_OBJECTS, lambda i: store[i], arity=2)
        digests = []
        seqno = 1
        for command, index, value in script:
            if command == "write":
                manager.modify(index)
                store[index] = value
            elif command == "checkpoint":
                digests.append(manager.take_checkpoint(seqno))
                seqno += 1
            elif command == "discard" and manager.checkpoint_seqnos():
                manager.discard_checkpoints_below(max(manager.checkpoint_seqnos()))
        return digests

    assert run() == run()
