"""Byzantine fault tolerance (E7): f scripted-malicious replicas are masked."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set
from repro.faults import (
    AvailabilityProbe,
    drop_fraction_from,
    make_equivocating_primary,
    make_lying_checkpointer,
    make_result_corruptor,
    make_vote_corruptor,
)

from tests.conftest import kv_cluster


def correct_states_agree(cluster, exclude):
    states = {
        rid: b"\x1f".join(cluster.service(rid).cells)
        for rid in cluster.hosts
        if rid != exclude
    }
    return len(set(states.values())) == 1


def test_equivocating_primary_cannot_split_the_service():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"seed"))
    make_equivocating_primary(cluster.replica("R0"))
    for i in range(10):
        assert client.invoke(encode_set(i % 4, bytes([i])), timeout=60) == b"OK"
    cluster.settle(2.0)
    # Safety: the three correct replicas never diverge.
    assert correct_states_agree(cluster, exclude="R0")


def test_result_corruptor_is_outvoted():
    cluster = kv_cluster()
    make_result_corruptor(cluster.replica("R2"))
    client = cluster.client("C0")
    client.invoke(encode_set(1, b"truth"))
    assert client.invoke(encode_get(1)) == b"truth"
    assert cluster.replica("R2").counters.get("byzantine_corrupt_results") >= 1


def test_lying_checkpointer_cannot_stall_garbage_collection():
    config = BFTConfig(checkpoint_interval=8, log_window=16)
    cluster = kv_cluster(config=config)
    make_lying_checkpointer(cluster.replica("R3"))
    client = cluster.client("C0")
    for i in range(30):
        client.invoke(encode_set(i % 4, bytes([i])), timeout=60)
    cluster.settle(2.0)
    for rid in ("R0", "R1", "R2"):
        assert cluster.replica(rid).stable_seqno >= 16


def test_vote_corruptor_is_harmless():
    cluster = kv_cluster()
    make_vote_corruptor(cluster.replica("R1"))
    client = cluster.client("C0")
    for i in range(10):
        assert client.invoke(encode_set(i % 4, bytes([i])), timeout=60) == b"OK"
    cluster.settle(1.0)
    assert correct_states_agree(cluster, exclude="R1")


def test_flaky_network_from_one_replica():
    cluster = kv_cluster(seed=5)
    remove = drop_fraction_from(cluster.network, "R2", 0.7)
    client = cluster.client("C0")
    for i in range(10):
        assert client.invoke(encode_set(i % 4, bytes([i])), timeout=60) == b"OK"
    remove()
    cluster.settle(3.0)
    assert correct_states_agree(cluster, exclude="R2")


def test_availability_probe_full_health():
    cluster = kv_cluster()
    probe = AvailabilityProbe(
        cluster.sim,
        cluster.client("C9"),
        make_op=lambda i: encode_set(i % 8, bytes([i % 251])),
        op_timeout=5.0,
    )
    probe.run(20)
    summary = probe.summary()
    assert summary.availability == 1.0
    assert summary.total == 20


def test_availability_probe_detects_outage():
    """With f+1 = 2 replicas crashed, the service must stall (no quorums);
    restoring one brings it back — the probe sees the outage window."""
    cluster = kv_cluster()
    client = cluster.client("C9")
    probe = AvailabilityProbe(
        cluster.sim, client, make_op=lambda i: encode_set(0, bytes([i % 251])),
        op_timeout=1.0,
    )
    probe.run(3)
    cluster.crash("R2")
    cluster.crash("R3")
    probe.run(3)
    cluster.restart("R2")
    cluster.sim.run_for(1.0)
    probe.run(3)
    summary = probe.summary()
    assert 3 <= summary.succeeded <= 7
    assert summary.outage_spans
