"""End-to-end masking on the replicated file service: a deterministic
implementation bug on one replica never surfaces to the client, and the
containment supervisor walks the full escalation ladder — reactive repair,
crash-loop classification, and (because ``put_objs`` re-installs the poison
data through the buggy vendor's own WRITE path, so even a skip transfer
re-crashes it) N-version failover to the diverse vendor."""

from repro.bft.config import BFTConfig
from repro.bft.repair import RepairPolicy
from repro.faults import POISON, BuggyServer
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment


def contained_deployment():
    return NFSDeployment(
        {
            # R0 boots the buggy vendor, with a diverse one as failover.
            "R0": [
                lambda disk: BuggyServer(MemFS(disk=disk, seed=10)),
                lambda disk: Ext2FS(disk=disk, seed=20),
            ],
            "R1": lambda disk: Ext2FS(disk=disk, seed=11),
            "R2": lambda disk: FFS(disk=disk, seed=12),
            "R3": lambda disk: LogFS(disk=disk, seed=13),
        },
        num_objects=64,
        config=BFTConfig(checkpoint_interval=8, log_window=16),
        repair=RepairPolicy(
            backoff_initial=0.02,
            backoff_max=0.2,
            deterministic_after=2,
            failover_after=3,
        ),
    )


def test_poisoned_write_is_masked_and_contained():
    dep = contained_deployment()
    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/ok.txt", b"fine")
    fs.create("/bomb.txt")
    # The poisoned WRITE itself succeeds: the quorum masks R0's crash.
    fs.write("/bomb.txt", POISON)
    # The service keeps answering while R0 is being repaired behind it.
    assert fs.read_file("/bomb.txt") == POISON
    for i in range(8):
        fs.write_file(f"/after{i}.txt", bytes([i]) * 16)
    dep.sim.run_for(5.0)
    host = dep.cluster.hosts["R0"]
    supervisor = host.supervisor
    assert supervisor is not None
    # The bug is deterministic — the poison sits in the very data a repair
    # must re-install — so reactive repair alone could not close the episode:
    # the ladder escalated to the diverse vendor.
    assert len(supervisor.crashes) >= 2
    assert host.factory_index == 1
    assert supervisor.counters.get("supervisor_failovers") == 1
    assert len(supervisor.mttr_log) == 1
    assert not dep.cluster.network.is_down("R0")
    # R0 converged on the quorum's abstract state.
    roots = {
        rid: dep.cluster.service(rid).current_node(0, 0)[1]
        for rid in dep.cluster.hosts
    }
    assert len(set(roots.values())) == 1
    # The repaired replica serves reads indistinguishably from the others.
    assert fs.read_file("/bomb.txt") == POISON


def test_skip_past_poison_suffices_when_poison_data_is_overwritten():
    """When the poison is overwritten before a checkpoint certifies it, the
    skip transfer alone closes the episode: the state it installs no longer
    contains the poison, so the rebuilt *buggy* vendor survives and no
    failover is needed.

    Until that checkpoint exists the replica crash-loops — every repair
    re-executes the log from genesis and re-feeds the poison WRITE — which is
    exactly the window the crash-loop classifier is for."""
    dep = contained_deployment()
    fs = NFSClient(dep.relay("C0"))
    fs.create("/bomb.txt")
    fs.write("/bomb.txt", POISON)
    # Overwrite immediately: the abstract state a skip transfer will install
    # no longer contains the poison pattern.
    fs.write("/bomb.txt", b"\x00" * len(POISON), offset=0)
    for i in range(8):
        fs.write_file(f"/after{i}.txt", bytes([i]) * 16)
    dep.sim.run_for(5.0)
    host = dep.cluster.hosts["R0"]
    supervisor = host.supervisor
    assert len(supervisor.crashes) >= 2  # looped until a checkpoint existed
    assert supervisor.counters.get("supervisor_skip_transfers") >= 1
    assert host.factory_index == 0  # still the original (buggy) vendor
    assert not supervisor.counters.get("supervisor_failovers")
    assert len(supervisor.mttr_log) == 1
    assert not dep.cluster.network.is_down("R0")
