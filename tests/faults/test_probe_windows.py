"""Windowed, resumable availability accounting on AvailabilityProbe."""

from repro.bft.testing import encode_set
from repro.faults import AvailabilityProbe

from tests.conftest import kv_cluster


def make_probe(cluster, window=0.0, gap=0.05, op_timeout=1.0):
    return AvailabilityProbe(
        cluster.sim,
        cluster.client("P0"),
        make_op=lambda i: encode_set(i % 8, b"probe:%d" % i),
        op_timeout=op_timeout,
        gap=gap,
        window=window,
    )


def test_windows_partition_the_sample_stream():
    cluster = kv_cluster()
    probe = make_probe(cluster, window=1.0)
    probe.run(30)
    summary = probe.summary()
    assert summary.total == 30
    assert len(summary.windows) >= 2
    # Every sample lands in exactly one window.
    assert sum(w.total for w in summary.windows) == summary.total
    for window in summary.windows:
        assert window.end - window.start == 1.0
        assert 0.0 <= window.availability <= 1.0
    # Windows are aligned to the origin grid and strictly ordered.
    starts = [w.start for w in summary.windows]
    assert starts == sorted(starts)
    assert all(start % 1.0 == 0.0 for start in starts)


def test_probe_resumes_across_segments():
    """Segmented soak driving: repeated run() calls continue one stream —
    op numbers stay unique and the summary covers all segments."""
    cluster = kv_cluster()
    probe = make_probe(cluster, window=1.0)
    probe.run(5)
    cluster.sim.run_for(2.5)  # idle gap between soak segments
    probe.run(5)
    summary = probe.summary()
    assert summary.total == 10
    assert probe._op_number == 10
    assert summary.availability == 1.0
    # The idle gap yields a hole in the window grid, not a merged bucket.
    starts = [w.start for w in summary.windows]
    assert len(starts) == len(set(starts))


def test_outage_coalescing_and_per_window_dip():
    """Consecutive failed probes coalesce into one span per outage episode;
    the failing windows are the ones whose availability dips."""
    cluster = kv_cluster()
    probe = make_probe(cluster, window=2.0, gap=0.05, op_timeout=0.5)
    probe.run(4)
    cluster.crash("R2")
    cluster.crash("R3")  # f+1 down: no quorum, probes time out
    probe.run(3)
    cluster.restart("R2")
    cluster.restart("R3")
    cluster.sim.run_for(1.0)
    probe.run(4)
    cluster.crash("R1")
    cluster.crash("R2")
    probe.run(2)
    cluster.restart("R1")
    cluster.restart("R2")
    cluster.sim.run_for(1.0)
    probe.run(3)

    summary = probe.summary()
    # Two distinct outage episodes -> exactly two coalesced spans.
    assert len(summary.outage_spans) == 2
    for start, end in summary.outage_spans:
        assert end > start
    assert summary.max_outage_span() >= 0.5
    assert summary.min_window_availability() < 1.0
    assert summary.succeeded == summary.total - 5
    # Failed time is inside the spans: each failed sample's interval is
    # covered by some span.
    for result in probe.results:
        if not result.ok:
            assert any(
                start <= result.started_at
                and result.started_at + result.latency <= end
                for start, end in summary.outage_spans
            )


def test_unwindowed_probe_reports_no_windows():
    cluster = kv_cluster()
    probe = make_probe(cluster, window=0.0)
    probe.run(5)
    summary = probe.summary()
    assert summary.windows == []
    assert summary.min_window_availability() == 1.0
    assert summary.max_outage_span() == 0.0


def test_run_until_advances_to_deadline():
    cluster = kv_cluster()
    probe = make_probe(cluster, window=1.0)
    probe.run_until(5.0, ops_per_segment=8)
    assert cluster.sim.now() >= 5.0
    assert probe.summary().total >= 8
