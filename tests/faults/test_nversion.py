"""Opportunistic N-version programming vs common-mode bugs (E8), and
aging/rejuvenation (E10)."""

import pytest

from repro.bft.client import InvocationTimeout
from repro.bft.config import BFTConfig
from repro.faults import POISON, BuggyServer
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment


def same_vendor_buggy():
    """Every replica runs the same buggy vendor (no version diversity)."""
    return NFSDeployment(
        {
            rid: (lambda disk, i=i: BuggyServer(MemFS(disk=disk, seed=10 + i)))
            for i, rid in enumerate(["R0", "R1", "R2", "R3"])
        },
        num_objects=64,
        config=BFTConfig(checkpoint_interval=8, log_window=16),
    )


def n_version_one_buggy():
    """Four distinct vendors; the bug exists only in vendor A's code."""
    return NFSDeployment(
        {
            "R0": lambda disk: BuggyServer(MemFS(disk=disk, seed=10)),
            "R1": lambda disk: Ext2FS(disk=disk, seed=11),
            "R2": lambda disk: FFS(disk=disk, seed=12),
            "R3": lambda disk: LogFS(disk=disk, seed=13),
        },
        num_objects=64,
        config=BFTConfig(checkpoint_interval=8, log_window=16),
    )


def test_common_mode_bug_takes_down_same_vendor_deployment():
    dep = same_vendor_buggy()
    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/ok.txt", b"fine")
    fs.create("/bomb.txt")
    with pytest.raises((InvocationTimeout, Exception)):
        fs.write("/bomb.txt", POISON)  # every replica executes it and dies
    # All four replicas crashed: the service is gone.
    assert all(dep.cluster.network.is_down(rid) for rid in dep.cluster.hosts)


def test_n_version_masks_the_same_bug():
    dep = n_version_one_buggy()
    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/ok.txt", b"fine")
    fs.create("/bomb.txt")
    fs.write("/bomb.txt", POISON)  # only R0 dies; quorum survives
    assert dep.cluster.network.is_down("R0")
    assert not any(dep.cluster.network.is_down(rid) for rid in ("R1", "R2", "R3"))
    # Service still fully available and correct.
    assert fs.read_file("/bomb.txt") == POISON
    fs.write_file("/after.txt", b"still alive")
    assert fs.read_file("/after.txt") == b"still alive"


def test_crashed_buggy_replica_rejuvenated_by_recovery():
    dep = n_version_one_buggy()
    fs = NFSClient(dep.relay("C0"))
    fs.create("/bomb.txt")
    fs.write("/bomb.txt", POISON)
    dep.sim.run_for(1.0)
    assert dep.cluster.network.is_down("R0")
    host = dep.cluster.hosts["R0"]
    assert host.recover_now()  # reboot from disk; fresh implementation
    dep.sim.run_for(5.0)
    assert host.replica.counters.get("recoveries_completed") >= 1
    roots = {
        rid: dep.cluster.service(rid).current_node(0, 0)[1] for rid in dep.cluster.hosts
    }
    assert len(set(roots.values())) == 1


def test_aging_crash_healed_by_proactive_recovery():
    """A replica whose implementation leaks memory crashes under load; the
    watchdog reboot restores it (software rejuvenation, paper section 2.2)."""
    dep = NFSDeployment(
        {
            "R0": lambda disk: MemFS(disk=disk, seed=1, aging_threshold=2500),
            "R1": lambda disk: Ext2FS(disk=disk, seed=2),
            "R2": lambda disk: FFS(disk=disk, seed=3),
            "R3": lambda disk: LogFS(disk=disk, seed=4),
        },
        num_objects=64,
        config=BFTConfig(checkpoint_interval=8, log_window=16),
    )
    fs = NFSClient(dep.relay("C0"))
    fs.create("/f")
    for i in range(80):
        fs.write("/f", b"x" * 200, offset=0)
    dep.sim.run_for(1.0)
    assert dep.cluster.network.is_down("R0")  # aged out and crashed
    host = dep.cluster.hosts["R0"]
    assert host.recover_now()
    dep.sim.run_for(5.0)
    assert host.replica.counters.get("recoveries_completed") >= 1
    # The leak is gone after reboot; a few more writes do not kill it again.
    for i in range(5):
        fs.write("/f", b"y" * 50, offset=0)
    dep.sim.run_for(1.0)
    assert not dep.cluster.network.is_down("R0")
