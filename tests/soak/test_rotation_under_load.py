"""Full staggered watchdog rotation under sustained WAN load.

Every replica is rebooted repeatedly (period 120s) while an open-loop crowd
offers 60 req/s across the ``wan3`` topology.  Rotation must never cost
correctness — zero safety-oracle violations in every configuration — and
overload damping must bound the view-change churn the reboots provoke: the
contrast run with damping off pays strictly more view changes for the same
timeline.  The counters are pinned exactly (the run is deterministic), so
any protocol change that shifts rotation/view-change interleaving on WAN
shows up here as a diff, not as silent drift.
"""

import pytest

from repro.explore.plan import FaultPlan, FaultStep
from repro.soak.runner import SoakSLO, run_soak

LOAD = (FaultStep(at=10.0, kind="flash_crowd", rate=60.0, clients=6, duration=240.0),)


def rotation_plan():
    return FaultPlan(
        seed=11,
        requests=0,
        topology="wan3",
        recovery_period=120.0,
        steps=LOAD,
    )


@pytest.fixture(scope="module")
def reports():
    return {
        damping: run_soak(
            rotation_plan(),
            slo=SoakSLO(window=60.0),
            config_overrides={"overload_damping": damping},
        )
        for damping in (True, False)
    }


def test_rotation_under_load_is_safe_and_available(reports):
    for report in reports.values():
        assert report.safety_violations == []
        assert report.slo_violations == []
        assert report.min_window_availability == 1.0
        assert report.counters["recoveries_started"] >= 10  # full staggered sweeps


def test_damping_bounds_view_changes(reports):
    damped = reports[True]
    undamped = reports[False]
    # Pinned counters: deterministic runs, exact values.
    assert damped.counters["view_changes_started"] == 28
    assert damped.counters["view_changes_damped"] == 19
    assert damped.counters["recoveries_started"] == 11
    assert undamped.counters["view_changes_started"] == 39
    assert undamped.counters["view_changes_damped"] == 0
    assert undamped.counters["recoveries_started"] == 10
    # The structural claim behind the pins: damping strictly bounds churn.
    assert (
        damped.counters["view_changes_started"]
        < undamped.counters["view_changes_started"]
    )
