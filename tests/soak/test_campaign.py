"""Campaign plans: codec back-compat, validation, beyond-assumption
windows, storm-geometry determinism, and the seeded generator."""

import pytest

from repro.explore.plan import (
    CAMPAIGN_KINDS,
    FaultPlan,
    FaultStep,
    beyond_assumption_windows,
    validate_plan,
)
from repro.soak.campaign import campaign_horizon, generate_campaign, storm_rng


def campaign_plan(**overrides):
    fields = dict(
        seed=3,
        requests=0,
        topology="wan3",
        steps=(
            FaultStep(at=5.0, kind="age_replicas", fraction=1e-4),
            FaultStep(at=10.0, kind="partition_storm", count=3, duration=40.0),
            FaultStep(at=20.0, kind="latency_spike", factor=2.5, duration=30.0),
            FaultStep(at=30.0, kind="flash_crowd", rate=8.0, clients=2, duration=20.0),
            FaultStep(at=50.0, kind="region_outage", region="eu-west", duration=15.0),
        ),
    )
    fields.update(overrides)
    return FaultPlan(**fields)


def test_campaign_plan_round_trips():
    plan = campaign_plan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert plan.has_campaign()
    assert validate_plan(plan) == []


def test_plain_plan_json_has_no_campaign_keys():
    """Back-compat: a pre-campaign plan serializes byte-identically — no
    topology key, no region/count/factor on steps."""
    plan = FaultPlan(
        seed=1, requests=4, steps=(FaultStep(at=0.5, kind="crash", target="R1"),)
    )
    data = plan.to_dict()
    assert "topology" not in data
    assert not plan.has_campaign()
    step = data["steps"][0]
    for key in ("region", "count", "factor"):
        assert key not in step


@pytest.mark.parametrize(
    "step, problem",
    [
        (FaultStep(at=1.0, kind="region_outage", region="eu-west", duration=5.0), "topology"),
        (FaultStep(at=1.0, kind="partition_storm", count=2, duration=5.0), "topology"),
        (FaultStep(at=1.0, kind="latency_spike", factor=2.0, duration=5.0), "topology"),
    ],
)
def test_topology_steps_require_a_topology(step, problem):
    plan = FaultPlan(seed=1, requests=0, steps=(step,))
    problems = validate_plan(plan)
    assert problems and problem in problems[0]


@pytest.mark.parametrize(
    "step",
    [
        FaultStep(at=1.0, kind="region_outage", region="atlantis", duration=5.0),
        FaultStep(at=1.0, kind="region_outage", region="eu-west", duration=0.0),
        FaultStep(at=1.0, kind="partition_storm", count=0, duration=5.0),
        FaultStep(at=1.0, kind="latency_spike", factor=1.0, duration=5.0),
        FaultStep(at=1.0, kind="flash_crowd", rate=0.0, clients=2, duration=5.0),
        FaultStep(at=1.0, kind="flash_crowd", rate=4.0, clients=0, duration=5.0),
        FaultStep(at=1.0, kind="age_replicas", target="R9"),
    ],
)
def test_invalid_campaign_steps_rejected(step):
    plan = FaultPlan(seed=1, requests=0, topology="wan3", steps=(step,))
    assert validate_plan(plan)


def test_unknown_topology_rejected():
    plan = FaultPlan(seed=1, requests=0, topology="atlantis")
    assert validate_plan(plan)


def test_beyond_assumption_windows_only_for_outages_exceeding_f():
    """On wan3 only us-east holds 2 > f replicas; a one-replica region
    outage stays within assumptions and declares nothing."""
    over_f = FaultPlan(
        seed=1,
        requests=0,
        topology="wan3",
        steps=(FaultStep(at=100.0, kind="region_outage", region="us-east", duration=50.0),),
    )
    assert beyond_assumption_windows(over_f, margin=30.0) == [(100.0, 180.0)]

    within_f = FaultPlan(
        seed=1,
        requests=0,
        topology="wan3",
        steps=(FaultStep(at=100.0, kind="region_outage", region="eu-west", duration=50.0),),
    )
    assert beyond_assumption_windows(within_f, margin=30.0) == []


def test_beyond_assumption_windows_merge_overlaps():
    plan = FaultPlan(
        seed=1,
        requests=0,
        topology="wan3",
        steps=(
            FaultStep(at=100.0, kind="region_outage", region="us-east", duration=50.0),
            FaultStep(at=160.0, kind="region_outage", region="us-east", duration=20.0),
            FaultStep(at=500.0, kind="region_outage", region="us-east", duration=10.0),
        ),
    )
    assert beyond_assumption_windows(plan, margin=30.0) == [
        (100.0, 210.0),
        (500.0, 540.0),
    ]


def test_storm_rng_is_a_pure_function_of_plan_and_step():
    step = FaultStep(at=12.5, kind="partition_storm", count=3, duration=60.0)
    a = [storm_rng(7, step).random() for _ in range(4)]
    b = [storm_rng(7, step).random() for _ in range(4)]
    assert a == b
    other = FaultStep(at=13.5, kind="partition_storm", count=3, duration=60.0)
    assert storm_rng(7, other).random() != a[0]
    assert storm_rng(8, step).random() != a[0]


def test_generated_campaign_is_valid_and_sorted():
    plan = generate_campaign(7, hours=0.5)
    assert validate_plan(plan) == []
    assert plan.topology == "wan3"
    ats = [step.at for step in plan.steps]
    assert ats == sorted(ats)
    kinds = {step.kind for step in plan.steps}
    assert kinds <= CAMPAIGN_KINDS
    assert {"partition_storm", "flash_crowd", "region_outage", "age_replicas"} <= kinds
    assert campaign_horizon(plan) == max(s.at + s.duration for s in plan.steps) + 60.0


def test_watchdog_contrast_differs_only_in_rotation():
    on = generate_campaign(7, hours=0.5, watchdog=True)
    off = generate_campaign(7, hours=0.5, watchdog=False)
    assert on.steps == off.steps
    assert on.seed == off.seed
    assert on.recovery_period > 0.0
    assert off.recovery_period == 0.0
