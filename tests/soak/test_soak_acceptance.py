"""The PR's acceptance contrast: one seeded 2-virtual-hour geo campaign on
``wan3`` (partition storms, a flash crowd, a beyond-assumption region outage,
fragmentation aging), run twice — proactive rotation ON then OFF — and both
artifacts replayed exactly through ``repro replay``.

Rotation ON must hold every safety oracle *and* the windowed availability
SLO; the identical fault timeline with rotation OFF must violate the SLO
(fragmentation accumulates unchecked) while safety still holds — the BASE
argument that proactive recovery buys availability, never correctness.
"""

import pytest

from repro.explore.cli import replay_main
from repro.soak.campaign import generate_campaign
from repro.soak.runner import SoakSLO, run_soak, write_soak_artifact

SEED = 7
HOURS = 2.0
SLO = SoakSLO()  # 300s windows, 0.99 floor, 90s outage bound, 30s margin


def campaign(watchdog):
    return generate_campaign(
        SEED,
        topology="wan3",
        hours=HOURS,
        watchdog=watchdog,
        storms=2,
        flash_crowds=1,
        crowd_clients=3,
    )


@pytest.fixture(scope="module")
def contrast(tmp_path_factory):
    """Run the ON and OFF campaigns once for the whole module."""
    directory = tmp_path_factory.mktemp("soak-acceptance")
    runs = {}
    for watchdog in (True, False):
        plan = campaign(watchdog)
        report = run_soak(plan, slo=SLO)
        path = directory / f"soak-{'on' if watchdog else 'off'}.json"
        write_soak_artifact(path, plan, SLO, report)
        runs[watchdog] = (plan, report, path)
    return runs


def test_identical_fault_timeline(contrast):
    plan_on, _, _ = contrast[True]
    plan_off, _, _ = contrast[False]
    assert plan_on.steps == plan_off.steps
    assert plan_on.seed == plan_off.seed
    assert plan_on.recovery_period > 0.0 and plan_off.recovery_period == 0.0
    assert HOURS * 3600.0 >= 7200.0  # the campaign really spans >= 2 virtual hours


def test_watchdog_on_meets_the_slo(contrast):
    plan, report, _ = contrast[True]
    assert report.safety_violations == []
    assert report.slo_violations == []
    assert report.ok
    # Every judged window (outside the declared beyond-assumption region
    # outage) sits at or above the floor.
    assert report.min_window_availability >= SLO.availability_floor
    assert report.excluded_windows  # the us-east outage was declared
    assert report.counters["recoveries_started"] > 0  # rotation really ran
    assert report.counters["aging_stalls"] > 0  # aging really bit
    assert report.mttr["recoveries"] > 0


def test_watchdog_off_violates_availability_but_never_safety(contrast):
    _, report, _ = contrast[False]
    assert report.safety_violations == []
    assert report.slo_violations  # fragmentation dragged windows under floor
    assert not report.ok
    assert report.min_window_availability < SLO.availability_floor
    assert report.counters["recoveries_started"] == 0
    # Unchecked aging shows up as view-change churn, damped or not.
    assert (
        report.counters["view_changes_started"]
        > contrast[True][1].counters["view_changes_started"]
    )


def test_replay_reproduces_the_rotation_run_exactly(contrast, capsys):
    _, _, path = contrast[True]
    assert replay_main([str(path)]) == 0
    assert "reproduces the recorded soak run exactly" in capsys.readouterr().out


def test_replay_reproduces_the_violation_run_exactly(contrast, capsys):
    _, _, path = contrast[False]
    assert replay_main([str(path)]) == 1
    assert "reproduces the recorded soak run exactly" in capsys.readouterr().out
