"""Soak harness mechanics on short campaigns: determinism, artifacts,
beyond-assumption exclusion, aging under view-change churn, and the CLI."""

import json

import pytest

from repro.explore.cli import replay_main
from repro.explore.plan import FaultPlan, FaultStep
from repro.soak.cli import soak_main
from repro.soak.runner import (
    SoakSLO,
    is_soak_artifact,
    load_soak_artifact,
    run_soak,
    write_soak_artifact,
)


def small_campaign(recovery_period=0.0):
    return FaultPlan(
        seed=21,
        requests=0,
        topology="wan3",
        recovery_period=recovery_period,
        steps=(
            FaultStep(at=10.0, kind="partition_storm", count=2, duration=30.0),
            FaultStep(at=20.0, kind="flash_crowd", rate=8.0, clients=2, duration=30.0),
        ),
    )


def test_short_soak_runs_clean_and_counts_campaign_work():
    report = run_soak(small_campaign(), slo=SoakSLO(window=30.0))
    assert report.ok
    assert report.safety_violations == []
    assert report.probe_ops > 0
    assert report.windows
    assert report.counters["storm_cuts"] == 2
    assert report.counters["flash_crowds"] == 1
    assert report.counters["messages_dropped_cut"] > 0
    assert report.swarm_offered > 0
    assert report.horizon == 110.0  # max step end (50) + 60s tail


def test_soak_is_deterministic():
    a = run_soak(small_campaign(), slo=SoakSLO(window=30.0))
    b = run_soak(small_campaign(), slo=SoakSLO(window=30.0))
    assert a.to_dict() == b.to_dict()


def test_invalid_plan_rejected():
    plan = FaultPlan(
        seed=1,
        requests=0,
        steps=(FaultStep(at=1.0, kind="partition_storm", count=2, duration=5.0),),
    )
    with pytest.raises(ValueError):
        run_soak(plan)


def test_destruction_plan_rejected():
    # Soak drives a single BASE group; destroying it is unrecoverable (the
    # fused-backup tier needs surviving sibling groups), so the harness
    # refuses up front instead of exploding mid-campaign.
    plan = FaultPlan(
        seed=1,
        requests=0,
        topology="wan3",
        steps=(FaultStep(at=10.0, kind="destroy_group", index=0),),
    )
    with pytest.raises(ValueError, match="sharded"):
        run_soak(plan)


def test_artifact_round_trip_and_replay_equality(tmp_path):
    path = tmp_path / "soak.json"
    plan = small_campaign()
    slo = SoakSLO(window=30.0)
    report = run_soak(plan, slo=slo)
    write_soak_artifact(path, plan, slo, report)

    data = json.loads(path.read_text())
    assert is_soak_artifact(data)
    loaded_plan, loaded_slo, recorded = load_soak_artifact(path)
    assert loaded_plan == plan
    assert loaded_slo == slo
    assert recorded["ok"] is True

    # Replaying from the decoded artifact reproduces the run exactly.
    replayed = run_soak(loaded_plan, slo=loaded_slo)
    assert replayed.to_dict() == report.to_dict()


def test_beyond_assumption_outage_is_excluded_from_slo():
    """A whole-region outage of us-east (2 > f replicas) stalls the service
    far past any availability floor — but its declared window is excluded,
    so the SLO holds; the safety oracles judged the whole run regardless."""
    plan = FaultPlan(
        seed=5,
        requests=0,
        topology="wan3",
        steps=(
            FaultStep(at=40.0, kind="region_outage", region="us-east", duration=50.0),
        ),
    )
    slo = SoakSLO(window=30.0, max_outage_span=20.0)
    report = run_soak(plan, slo=slo)
    assert report.excluded_windows == [(40.0, 120.0)]  # duration + 30s margin
    assert report.safety_violations == []
    assert report.slo_violations == []
    # The probe really did see the outage; only the exclusion saved the SLO.
    assert report.counters["region_outages"] == 1
    assert any(end - start > 20.0 for start, end in report.outage_spans)


def test_within_assumption_outage_is_judged():
    """Losing eu-west (1 replica = f) keeps quorum: no liveness exemption is
    declared and the SLO must hold on its own."""
    plan = FaultPlan(
        seed=5,
        requests=0,
        topology="wan3",
        steps=(
            FaultStep(at=40.0, kind="region_outage", region="eu-west", duration=50.0),
        ),
    )
    report = run_soak(plan, slo=SoakSLO(window=30.0))
    assert report.excluded_windows == []
    assert report.ok


def test_aging_under_view_change_churn_stays_safe():
    """Regression: fragmentation stalls past the view-change timeout drive
    hundreds of view changes; certificates completed while a view change is
    in flight must not let a new view re-propose a committed seqno (the
    prepare/commit freeze in Replica.on_prepare/on_commit)."""
    plan = FaultPlan(
        seed=42,
        requests=0,
        topology="wan3",
        recovery_period=0.0,
        steps=(
            FaultStep(at=5.0, kind="age_replicas", duration=900.0, fraction=2e-3),
        ),
    )
    report = run_soak(plan, slo=SoakSLO())
    assert report.safety_violations == []
    assert report.counters["view_changes_started"] > 100  # churn really happened
    assert report.counters["aging_stalls"] > 0


def test_soak_cli_writes_replayable_artifact(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = soak_main(
        ["--seed", "9", "--hours", "0.02", "--out", str(out), "--quiet"]
    )
    assert code == 0
    assert capsys.readouterr().out.count("SLO held") == 1
    plan, slo, recorded = load_soak_artifact(out)
    assert plan.topology == "wan3"
    assert recorded["ok"] is True

    # `repro replay` understands the soak format and re-executes it.
    code = replay_main([str(out)])
    captured = capsys.readouterr()
    assert code == 0
    assert "reproduces the recorded soak run exactly" in captured.out


def test_soak_cli_rejects_bad_usage(capsys):
    assert soak_main(["--hours", "0"]) == 2
    capsys.readouterr()
