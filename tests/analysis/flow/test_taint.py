"""TAINT4xx: nondeterminism laundered through helpers and attributes."""

from tests.analysis.flow.util import rules_fired, run_analyze

HELPERS = """
import uuid


def fresh_id():
    return uuid.uuid4().hex


def wrapper():
    return fresh_id()


class Registry:
    def __init__(self):
        self.token = None
        self.count = 0

    def refresh(self):
        self.token = fresh_id()
"""

SINK = """
from util.helpers import wrapper, Registry


def apply_op(registry: Registry):
    handle = wrapper()
    return handle
"""


def test_taint401_reports_laundered_call_with_chain(tmp_path):
    result = run_analyze(
        tmp_path,
        {"src/util/helpers.py": HELPERS, "src/det/core.py": SINK},
        det_scope=["src/det"],
    )
    assert rules_fired(result) == ["TAINT401"]
    violation = result.violations[0]
    assert violation.path == "src/det/core.py"
    # the diagnostic carries the full source→sink chain down to the primitive
    assert "wrapper" in violation.message
    assert "fresh_id" in violation.message
    assert "uuid.uuid4" in violation.message
    assert "src/util/helpers.py" in violation.message


def test_taint402_reports_attribute_laundering(tmp_path):
    reader = """
from util.helpers import Registry


def read_state(registry: Registry):
    return registry.token
"""
    result = run_analyze(
        tmp_path,
        {"src/util/helpers.py": HELPERS, "src/det/reader.py": reader},
        det_scope=["src/det"],
    )
    assert rules_fired(result) == ["TAINT402"]
    violation = result.violations[0]
    assert violation.path == "src/det/reader.py"
    assert "Registry.token" in violation.message
    assert "uuid.uuid4" in violation.message


def test_untainted_attribute_reads_are_fine(tmp_path):
    reader = """
from util.helpers import Registry


def read_count(registry: Registry):
    return registry.count
"""
    result = run_analyze(
        tmp_path,
        {"src/util/helpers.py": HELPERS, "src/det/reader.py": reader},
        det_scope=["src/det"],
    )
    assert result.clean, [v.render() for v in result.violations]


def test_suppressed_primitive_does_not_seed_taint(tmp_path):
    helpers = """
import uuid


def fresh_id():
    # repro: allow[DET003] test fixture ids, never fed to replicated state
    return uuid.uuid4().hex
"""
    result = run_analyze(
        tmp_path,
        {
            "src/util/helpers.py": helpers,
            "src/det/core.py": """
from util.helpers import fresh_id


def apply_op():
    return fresh_id()
""",
        },
        det_scope=["src/det"],
    )
    # The allow is on the primitive's own line (outside det scope), so the
    # nondeterminism is accepted at the source: no taint, and the allow is
    # counted as used rather than stale.
    assert result.clean, [v.render() for v in result.violations]
    assert result.suppressions_used == 1


def test_taint401_suppressible_at_the_sink(tmp_path):
    sink = """
from util.helpers import wrapper


def apply_op():
    handle = wrapper()  # repro: allow[TAINT401] bootstrap only, replayed verbatim
    return handle
"""
    result = run_analyze(
        tmp_path,
        {"src/util/helpers.py": HELPERS, "src/det/core.py": sink},
        det_scope=["src/det"],
    )
    assert result.clean, [v.render() for v in result.violations]
    assert result.suppressions_used == 1


def test_in_scope_primitive_is_det_rule_not_taint(tmp_path):
    # A primitive called directly inside the scope is the per-file rules' job;
    # the flow pass must not double-report it.
    result = run_analyze(
        tmp_path,
        {
            "src/det/core.py": """
import uuid


def apply_op():
    return uuid.uuid4().hex
"""
        },
        det_scope=["src/det"],
    )
    assert rules_fired(result) == ["DET003"]
