"""Stale-allow auditing across the two commands.

A suppression is only *stale* when every rule it names actually ran in the
invocation: an ``allow[TAINT401]`` must survive ``repro lint`` (which skips
flow rules) but is audited — used or flagged — by ``repro analyze``.
"""

from tests.analysis.util import run_lint
from tests.analysis.flow.util import rules_fired, run_analyze

HELPERS = """
import uuid


def wrapper():
    return uuid.uuid4().hex
"""

SUPPRESSED_SINK = """
from util.helpers import wrapper


def apply_op():
    handle = wrapper()  # repro: allow[TAINT401] bootstrap only, replayed verbatim
    return handle
"""

POINTLESS_ALLOW = """
def pure():
    # repro: allow[TAINT401] nothing nondeterministic here at all
    return 1
"""


def test_flow_allow_is_not_stale_under_lint(tmp_path):
    result = run_lint(
        tmp_path,
        {"src/util/helpers.py": HELPERS, "src/det/core.py": SUPPRESSED_SINK},
        det_scope=["src/det"],
    )
    # lint skips flow rules, so it can't judge the allow: neither a LINT901
    # (the id is registered) nor a LINT903 (the rule didn't run)
    assert result.clean, [v.render() for v in result.violations]


def test_flow_allow_is_used_under_analyze(tmp_path):
    result = run_analyze(
        tmp_path,
        {"src/util/helpers.py": HELPERS, "src/det/core.py": SUPPRESSED_SINK},
        det_scope=["src/det"],
    )
    assert result.clean, [v.render() for v in result.violations]
    assert result.suppressions_used == 1


def test_pointless_flow_allow_is_stale_under_analyze_only(tmp_path):
    files = {"src/det/core.py": POINTLESS_ALLOW}
    lint_result = run_lint(tmp_path, files, det_scope=["src/det"])
    assert lint_result.clean, [v.render() for v in lint_result.violations]

    analyze_result = run_analyze(tmp_path, files, det_scope=["src/det"])
    assert rules_fired(analyze_result) == ["LINT903"]
    assert "TAINT401" in analyze_result.violations[0].message


def test_unknown_rule_id_still_flagged_by_both(tmp_path):
    files = {
        "src/det/core.py": """
def pure():
    # repro: allow[NOPE999] mystery rule
    return 1
"""
    }
    for result in (
        run_lint(tmp_path, files, det_scope=["src/det"]),
        run_analyze(tmp_path, files, det_scope=["src/det"]),
    ):
        assert rules_fired(result) == ["LINT901"]
