"""FLOW6xx: the message producer/consumer graph and the static freeze check."""

from tests.analysis.flow.util import build_flow_context, rules_fired, run_analyze

MESSAGES = """
_POST_FREEZE_MUTABLE = frozenset({"auth", "sig"})


class Message:
    pass


class Ping(Message):
    seq: int


class Pong(Message):
    seq: int


class Orphan(Message):
    seq: int


class Ghost(Message):
    seq: int


class Inner(Message):
    seq: int


class Carrier(Message):
    inner: Inner
"""

NODE = """
from proto.messages import Carrier, Ghost, Inner, Orphan, Ping, Pong


class Node:
    def on_message(self, message):
        if isinstance(message, Ping):
            self.send(Pong(1))
        elif isinstance(message, Pong):
            pass
        elif isinstance(message, Ghost):
            pass
        elif isinstance(message, Carrier):
            pass

    def send(self, message):
        pass

    def start(self):
        ping = Ping(0)
        self.send(ping)

    def leak(self):
        orphan = Orphan(2)
        self.send(orphan)

    def wrap(self):
        carrier = Carrier(Inner(3))
        self.send(carrier)

    def flush_inner(self):
        inner = Inner(4)
        self.send(inner)
"""


def _analyze(tmp_path, files):
    # The synthetic messages deliberately skip signable_bytes/wire tags —
    # the PROTO invariants are covered by their own tests, disable them here.
    return run_analyze(
        tmp_path,
        files,
        protocol_messages="src/proto/messages.py",
        protocol_dispatch=["src"],
        disable=["PROTO100", "PROTO101", "PROTO102", "PROTO103"],
    )


BASE = {"src/proto/messages.py": MESSAGES, "src/node.py": NODE}


def test_flow_findings_on_the_synthetic_protocol(tmp_path):
    result = _analyze(tmp_path, BASE)
    fired = rules_fired(result)
    # Orphan: emitted, no dispatch arm.  Ghost: arm, never constructed.
    # Inner is emitted without an arm too, but travels embedded as a field
    # of Carrier, so FLOW601 exempts it.
    assert fired == ["FLOW601", "FLOW602"]
    flow601 = next(v for v in result.violations if v.rule == "FLOW601")
    assert "Orphan" in flow601.message
    assert flow601.path == "src/node.py"
    flow602 = next(v for v in result.violations if v.rule == "FLOW602")
    assert "Ghost" in flow602.message


def test_message_graph_structure(tmp_path):
    fctx = build_flow_context(
        tmp_path,
        BASE,
        protocol_messages="src/proto/messages.py",
        protocol_dispatch=["src"],
    )
    graph = fctx.message_graph
    assert set(graph.nodes) == {"Ping", "Pong", "Orphan", "Ghost", "Inner", "Carrier"}
    ping = graph.nodes["Ping"]
    assert ping.producers and ping.emitters and ping.consumers
    assert graph.nodes["Inner"].embedded_in == ["Carrier"]
    assert graph.post_freeze_mutable == frozenset({"auth", "sig"})


def test_post_freeze_write_is_flagged(tmp_path):
    files = dict(BASE)
    files["src/signer.py"] = """
from proto.messages import Ping


def sign_then_mutate(key):
    ping = Ping(1)
    wire = ping.signable_bytes()
    ping.seq = 2
    ping.sig = key.sign(wire)
    return ping
"""
    result = _analyze(tmp_path, files)
    flow603 = [v for v in result.violations if v.rule == "FLOW603"]
    # exactly one: ping.seq at line 8.  The `ping.sig = ...` write on the next
    # line is in the runtime's post-freeze allow-list and is not flagged.
    assert len(flow603) == 1
    violation = flow603[0]
    assert violation.path == "src/signer.py"
    assert violation.line == 8
    assert "`ping.seq`" in violation.message


def test_send_freezes_too_and_prior_writes_are_fine(tmp_path):
    files = dict(BASE)
    files["src/sender.py"] = """
from proto.messages import Ping


def prepare_and_send(node):
    ping = Ping(1)
    ping.seq = 7
    node.send(ping)
    ping.seq = 8
    return ping
"""
    result = _analyze(tmp_path, files)
    flow603 = [v for v in result.violations if v.rule == "FLOW603"]
    assert len(flow603) == 1
    assert flow603[0].line == 9
