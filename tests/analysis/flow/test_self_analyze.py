"""Self-analysis: the repository passes its own interprocedural analyzer,
and the analyzer demonstrably *sees* the protocol (quorum sites classified,
message graph populated) rather than passing vacuously."""

import json
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.engine import analyze_project, collect_files, parse_file
from repro.analysis.flow import FlowContext
from repro.analysis.flow.graphs import render_dot, render_graph_json
from repro.analysis.flow.quorum import collect_sites
from repro.analysis.registry import ProjectIndex

REPO_ROOT = Path(__file__).resolve().parents[3]


def _flow_context() -> FlowContext:
    config = load_config(project_root=REPO_ROOT)
    contexts = []
    for path in collect_files(config, None):
        ctx = parse_file(path, config)
        if ctx is not None:
            contexts.append(ctx)
    return FlowContext(ProjectIndex(config=config, files=contexts))


def test_repository_is_analyze_clean():
    config = load_config(project_root=REPO_ROOT)
    result = analyze_project(config)
    rendered = "\n".join(v.render() for v in result.violations)
    assert result.clean, f"repository fails its own analyzer:\n{rendered}"
    assert result.files_checked > 50


def test_quorum_sites_cover_the_bft_core():
    fctx = _flow_context()
    sites = collect_sites(fctx)
    by_class = {}
    for site in sites:
        by_class.setdefault(site.kind.cls, 0)
        by_class[site.kind.cls] += 1
    # every vote family in the protocol is classified somewhere
    for cls in ("prepare", "commit", "checkpoint", "viewchange", "reply"):
        assert by_class.get(cls, 0) >= 1, f"no {cls} quorum site classified"
    assert len(sites) >= 10
    # the certificate-verification site is recognized as derived from a
    # CheckpointCert parameter (what QUORUM504 keys on)
    assert any(site.kind.cert_param for site in sites)


def test_message_graph_covers_the_wire_protocol():
    fctx = _flow_context()
    graph = fctx.message_graph
    assert len(graph.nodes) >= 15
    for name in ("Request", "PrePrepare", "Prepare", "Commit", "Checkpoint"):
        node = graph.nodes[name]
        assert node.producers, f"{name} has no construction site"
        assert node.consumers, f"{name} has no dispatch arm"
    assert "TransferRoot" in graph.nodes["CheckpointCert"].embedded_in
    assert graph.post_freeze_mutable == frozenset({"auth", "sig"})


def test_graph_dumps_are_well_formed():
    fctx = _flow_context()
    dot = render_dot(fctx.message_graph)
    assert dot.startswith("digraph message_flow {") and dot.rstrip().endswith("}")
    assert '"PrePrepare" [shape=box' in dot
    payload = json.loads(render_graph_json(fctx.callgraph, fctx.message_graph))
    assert payload["format"] == 1
    assert len(payload["callgraph"]["functions"]) > 500
    assert len(payload["messages"]) >= 15
    qualnames = {f["qualname"] for f in payload["callgraph"]["functions"]}
    assert "repro.bft.replica.Replica.on_message" in qualnames
