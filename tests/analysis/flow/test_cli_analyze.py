"""`repro analyze` CLI: exit codes, reporters, and the --graph dumps."""

import json
from pathlib import Path

from repro.analysis.cli import EXIT_CLEAN, EXIT_USAGE, EXIT_VIOLATIONS, analyze_main

REPO_ROOT = Path(__file__).resolve().parents[3]


def test_analyze_clean_tree_exits_zero(capsys):
    code = analyze_main(["--root", str(REPO_ROOT)])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "clean:" in out


def test_analyze_json_report(capsys):
    code = analyze_main(["--root", str(REPO_ROOT), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert payload["violations"] == []


def test_analyze_reports_violations_with_exit_one(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint]\n"
        'paths = ["src"]\n'
        'deterministic-scope = []\n'
        'quorum-paths = ["src"]\n',
        encoding="utf-8",
    )
    src = tmp_path / "src"
    src.mkdir()
    (src / "log.py").write_text(
        "class Log:\n"
        "    def __init__(self, config):\n"
        "        self.config = config\n"
        "\n"
        "    def prepared(self, prepares):\n"
        "        return len(prepares) >= self.config.f\n",
        encoding="utf-8",
    )
    code = analyze_main(["--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == EXIT_VIOLATIONS
    assert "QUORUM501" in out


def test_analyze_graph_dot_to_file(tmp_path, capsys):
    out_file = tmp_path / "flow.dot"
    code = analyze_main(
        ["--root", str(REPO_ROOT), "--graph", "dot", "--graph-out", str(out_file)]
    )
    capsys.readouterr()
    assert code == EXIT_CLEAN
    dot = out_file.read_text(encoding="utf-8")
    assert dot.startswith("digraph message_flow {")
    assert '"ViewChange"' in dot


def test_analyze_graph_json_to_stdout(capsys):
    code = analyze_main(["--root", str(REPO_ROOT), "--graph", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert set(payload) == {"format", "callgraph", "messages"}


def test_analyze_list_rules_includes_flow_families(capsys):
    code = analyze_main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    for rule in ("TAINT401", "QUORUM501", "QUORUM504", "FLOW601", "FLOW603"):
        assert rule in out


def test_analyze_bad_path_is_usage_error(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("", encoding="utf-8")
    code = analyze_main(["--root", str(tmp_path), "no/such/path.py"])
    capsys.readouterr()
    assert code == EXIT_USAGE
