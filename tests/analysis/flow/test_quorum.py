"""QUORUM5xx: symbolic 2f+1 / f+1 threshold checking."""

from tests.analysis.flow.util import rules_fired, run_analyze


def _log_module(prepare_bound: str, commit_bound: str) -> str:
    return f"""
class MessageLog:
    def __init__(self, config):
        self.config = config

    def prepared(self, slot):
        votes = {{p.replica_id for p in slot.matching_prepares()}}
        return len(votes) >= {prepare_bound}

    def committed_local(self, slot):
        votes = {{c.replica_id for c in slot.matching_commits()}}
        return len(votes) >= {commit_bound}
"""


def _analyze_quorum(tmp_path, files):
    return run_analyze(tmp_path, files, quorum_paths=["src"])


def test_correct_bounds_are_clean(tmp_path):
    result = _analyze_quorum(
        tmp_path,
        {"src/log.py": _log_module("2 * self.config.f", "self.config.quorum")},
    )
    assert result.clean, [v.render() for v in result.violations]


def test_prepare_accepting_f_votes_is_below_weak_quorum(tmp_path):
    result = _analyze_quorum(
        tmp_path,
        {"src/log.py": _log_module("self.config.f", "self.config.quorum")},
    )
    assert rules_fired(result) == ["QUORUM501"]


def test_commit_accepting_f_plus_one_is_a_weak_certificate(tmp_path):
    result = _analyze_quorum(
        tmp_path,
        {"src/log.py": _log_module("2 * self.config.f", "self.config.f + 1")},
    )
    assert rules_fired(result) == ["QUORUM502"]
    assert "2f+1" in result.violations[0].message


def test_prepare_accepting_weak_quorum_is_a_weak_prepare_cert(tmp_path):
    result = _analyze_quorum(
        tmp_path,
        {"src/log.py": _log_module("self.config.weak_quorum", "self.config.quorum")},
    )
    assert rules_fired(result) == ["QUORUM503"]


def test_hardcoded_constant_threshold(tmp_path):
    result = _analyze_quorum(
        tmp_path,
        {"src/log.py": _log_module("3", "self.config.quorum")},
    )
    assert rules_fired(result) == ["QUORUM505"]


def test_guard_polarity_normalizes_to_the_same_bound(tmp_path):
    source = """
class Replica:
    def __init__(self, config):
        self.config = config

    def adopt(self, commits):
        if len(commits) < self.config.quorum:
            return False
        return True

    def weak_adopt(self, commits):
        if len(commits) < self.config.f + 1:
            return False
        return True
"""
    result = _analyze_quorum(tmp_path, {"src/replica.py": source})
    fired = rules_fired(result)
    assert fired == ["QUORUM502"]
    assert result.violations[0].line == 12


def test_conditional_threshold_judged_by_weakest_branch(tmp_path):
    source = """
class Client:
    def __init__(self, config):
        self.config = config

    def done(self, replies, read_only):
        needed = self.config.quorum if read_only else self.config.weak_quorum
        return len(replies) >= needed

    def weak_done(self, replies, read_only):
        needed = self.config.quorum if read_only else self.config.f
        return len(replies) >= needed
"""
    result = _analyze_quorum(tmp_path, {"src/client.py": source})
    # reply quorum f+1 is legitimate; the f branch is below the weak quorum
    assert rules_fired(result) == ["QUORUM501"]
    assert result.violations[0].line == 12


def test_annotation_classified_collection(tmp_path):
    # the collection's name says nothing; its annotation types it as
    # view-change votes, and f of them is below the f+1 join proof
    source = """
from typing import Dict

from msgs import ViewChange


class Manager:
    def __init__(self, config):
        self.config = config
        self.pending: Dict[str, ViewChange] = {}

    def should_join(self):
        return len(self.pending) >= self.config.f
"""
    msgs = """
class ViewChange:
    pass
"""
    result = _analyze_quorum(
        tmp_path, {"src/manager.py": source, "src/msgs.py": msgs}
    )
    assert rules_fired(result) == ["QUORUM501"]


def test_unclassified_or_unrelated_comparisons_are_ignored(tmp_path):
    source = """
class Replica:
    def __init__(self, config):
        self.config = config
        self.batch = []

    def full(self):
        return len(self.batch) >= self.config.batch_max

    def window_ok(self, entries):
        return len(entries) >= 8

    def capacity(self, pending):
        return 2 * len(pending) < self.config.f
"""
    result = _analyze_quorum(tmp_path, {"src/replica.py": source})
    assert result.clean, [v.render() for v in result.violations]
