"""Call-graph construction: the resolution idioms the flow rules depend on."""

from repro.analysis.flow.callgraph import module_name

from tests.analysis.flow.util import build_flow_context


def test_module_name_mapping():
    assert module_name("src/repro/bft/log.py") == "repro.bft.log"
    assert module_name("src/repro/bft/__init__.py") == "repro.bft"
    assert module_name("tools/gen.py") == "tools.gen"


PROJECT = {
    "src/pkg/helpers.py": """
def helper():
    return 1


def outer():
    return helper()
""",
    "src/pkg/objects.py": """
from pkg.helpers import helper


class Widget:
    def __init__(self, size: int):
        self.size = size

    def poke(self):
        return helper()


class Gadget(Widget):
    pass


def make() -> Widget:
    return Widget(3)
""",
    "src/pkg/driver.py": """
from pkg import objects
from pkg.objects import Widget, make


class Driver:
    def __init__(self, widget: Widget):
        self.widget = widget

    def run(self):
        self.widget.poke()

    def build(self):
        fresh = objects.Widget(5)
        fresh.poke()
        made = make()
        made.poke()


def run_gadget(gadget: "objects.Gadget"):
    pass
""",
}


def _graph(tmp_path):
    return build_flow_context(tmp_path, PROJECT).callgraph


def test_bare_and_from_import_calls_resolve(tmp_path):
    graph = _graph(tmp_path)
    outer = graph.functions["pkg.helpers.outer"]
    assert list(outer.callee_names()) == ["pkg.helpers.helper"]
    poke = graph.functions["pkg.objects.Widget.poke"]
    assert list(poke.callee_names()) == ["pkg.helpers.helper"]


def test_typed_attribute_receiver_resolves_method(tmp_path):
    graph = _graph(tmp_path)
    run = graph.functions["pkg.driver.Driver.run"]
    assert "pkg.objects.Widget.poke" in list(run.callee_names())


def test_constructor_and_return_annotation_typing(tmp_path):
    graph = _graph(tmp_path)
    build = graph.functions["pkg.driver.Driver.build"]
    callees = list(build.callee_names())
    # constructor call resolves to __init__, and both constructor-typed and
    # return-annotation-typed locals resolve .poke()
    assert "pkg.objects.Widget.__init__" in callees
    assert callees.count("pkg.objects.Widget.poke") == 2


def test_method_lookup_walks_base_chain(tmp_path):
    graph = _graph(tmp_path)
    found = graph.find_method("Gadget", "poke")
    assert found is not None and found.qualname == "pkg.objects.Widget.poke"


def test_container_annotations_do_not_type_instances(tmp_path):
    files = dict(PROJECT)
    files["src/pkg/holder.py"] = """
from typing import Dict, Optional

from pkg.objects import Widget


class Holder:
    def __init__(self):
        self.many: Dict[str, Widget] = {}
        self.one: Optional[Widget] = None
"""
    graph = build_flow_context(tmp_path, files).callgraph
    # Dict[str, Widget] is a container of Widgets, not a Widget...
    assert graph.attr_type("Holder", "many") is None
    # ...but the annotation text is still recorded for classification,
    assert "Widget" in graph.attr_annotation("Holder", "many")
    # and Optional[Widget] is an instance.
    assert graph.attr_type("Holder", "one") == "Widget"


def test_reachability_closure(tmp_path):
    graph = _graph(tmp_path)
    reachable = graph.reachable_from(["pkg.driver.Driver.run"])
    assert "pkg.objects.Widget.poke" in reachable
    assert "pkg.helpers.helper" in reachable
    assert "pkg.driver.Driver.build" not in reachable
