"""The analyzer must catch every planted regression *statically*.

``repro.faults.plant`` sabotages live replica objects at runtime; its
``SOURCE_MUTATIONS`` table expresses the same regressions as textual edits to
the real source tree.  Each test applies one mutation to a temp copy of
``src/`` and asserts ``repro analyze`` reports the expected QUORUM5xx rules —
the static mirror of the exploration engine finding them dynamically.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis.config import load_config
from repro.analysis.engine import analyze_project
from repro.faults.plant import PLANTED_BUGS, SOURCE_MUTATIONS

from tests.analysis.flow.util import rules_fired

REPO_ROOT = Path(__file__).resolve().parents[3]


def test_every_runtime_plant_has_a_source_mirror():
    # Static-only entries (quorum sites with no runtime plant, like the 2PC
    # vote certificate) are allowed; every runtime plant must be mirrored.
    assert set(PLANTED_BUGS) <= set(SOURCE_MUTATIONS)


def _mutated_tree(tmp_path: Path, name: str) -> Path:
    root = tmp_path / name
    shutil.copytree(REPO_ROOT / "src", root / "src")
    shutil.copy(REPO_ROOT / "pyproject.toml", root / "pyproject.toml")
    for relpath, before, after in SOURCE_MUTATIONS[name]["edits"]:
        target = root / relpath
        source = target.read_text(encoding="utf-8")
        assert before in source, (
            f"{relpath} no longer contains {before!r}; the BFT core was "
            "refactored — update SOURCE_MUTATIONS to keep static coverage"
        )
        target.write_text(source.replace(before, after), encoding="utf-8")
    return root


@pytest.mark.parametrize("name", sorted(SOURCE_MUTATIONS))
def test_mutation_is_caught_statically(tmp_path, name):
    root = _mutated_tree(tmp_path, name)
    result = analyze_project(load_config(project_root=root))
    fired = rules_fired(result)
    expected = SOURCE_MUTATIONS[name]["expect_rules"]
    assert fired == sorted(expected), (
        f"planted {name}: expected exactly {expected}, analyzer reported "
        f"{fired}:\n" + "\n".join(v.render() for v in result.violations)
    )


def test_blind_cert_mutation_names_every_cert_carrying_message(tmp_path):
    root = _mutated_tree(tmp_path, "blind-checkpoint-certs")
    result = analyze_project(load_config(project_root=root))
    named = {
        cls
        for cls in ("CheckpointCert", "TransferRoot", "ViewChange")
        if any(cls in v.message for v in result.violations)
    }
    assert named == {"CheckpointCert", "TransferRoot", "ViewChange"}
