"""Helpers for the flow-analysis tests: build a throwaway project tree and
run the interprocedural analyzer (or just build its artifacts) against it."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintResult, analyze_project, collect_files, parse_file
from repro.analysis.flow import FlowContext
from repro.analysis.registry import ProjectIndex


def _write_tree(tmp_path: Path, files: Dict[str, str]) -> None:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


def make_config(
    tmp_path: Path,
    files: Dict[str, str],
    det_scope: Optional[List[str]] = None,
    protocol_messages: str = "does/not/exist.py",
    protocol_dispatch: Optional[List[str]] = None,
    quorum_paths: Optional[List[str]] = None,
    disable: Optional[List[str]] = None,
) -> LintConfig:
    _write_tree(tmp_path, files)
    return LintConfig(
        project_root=tmp_path,
        paths=sorted({relpath.split("/")[0] for relpath in files}),
        deterministic_scope=det_scope if det_scope is not None else [],
        protocol_messages=protocol_messages,
        protocol_dispatch=protocol_dispatch if protocol_dispatch is not None else [],
        quorum_paths=quorum_paths if quorum_paths is not None else [],
        disable=disable if disable is not None else [],
    )


def run_analyze(tmp_path: Path, files: Dict[str, str], **kwargs) -> LintResult:
    """Write ``files`` (relpath -> source) under ``tmp_path`` and analyze."""
    return analyze_project(make_config(tmp_path, files, **kwargs))


def build_flow_context(tmp_path: Path, files: Dict[str, str], **kwargs) -> FlowContext:
    """Build the FlowContext (call graph, message graph) without running rules."""
    config = make_config(tmp_path, files, **kwargs)
    contexts = []
    for path in collect_files(config, None):
        ctx = parse_file(path, config)
        if ctx is not None:
            contexts.append(ctx)
    return FlowContext(ProjectIndex(config=config, files=contexts))


def rules_fired(result: LintResult) -> List[str]:
    return sorted({violation.rule for violation in result.violations})
