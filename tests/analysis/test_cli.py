"""CLI front end: stable exit codes and report formats."""

import json
import textwrap

from repro.analysis.cli import EXIT_CLEAN, EXIT_USAGE, EXIT_VIOLATIONS, main


def write_project(tmp_path, source):
    (tmp_path / "pyproject.toml").write_text(
        textwrap.dedent(
            """
            [tool.repro.lint]
            paths = ["src"]
            deterministic-scope = ["src"]
            """
        ),
        encoding="utf-8",
    )
    module = tmp_path / "src" / "module.py"
    module.parent.mkdir(parents=True)
    module.write_text(source, encoding="utf-8")


def test_exit_zero_on_clean_project(tmp_path, capsys):
    write_project(tmp_path, "VALUE = 1\n")
    assert main(["--root", str(tmp_path)]) == EXIT_CLEAN
    assert "clean" in capsys.readouterr().out


def test_exit_one_with_file_line_diagnostic(tmp_path, capsys):
    write_project(tmp_path, "import time\nstamp = time.time()\n")
    assert main(["--root", str(tmp_path)]) == EXIT_VIOLATIONS
    out = capsys.readouterr().out
    assert "src/module.py:2:" in out and "DET001" in out


def test_json_format_is_versioned_and_parseable(tmp_path, capsys):
    write_project(tmp_path, "import time\nstamp = time.time()\n")
    assert main(["--root", str(tmp_path), "--format", "json"]) == EXIT_VIOLATIONS
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["clean"] is False
    assert document["violations"][0]["rule"] == "DET001"
    assert document["violations"][0]["line"] == 2


def test_exit_two_on_missing_path(tmp_path, capsys):
    write_project(tmp_path, "VALUE = 1\n")
    assert main(["--root", str(tmp_path), "no/such/dir"]) == EXIT_USAGE


def test_exit_two_on_bad_flag(tmp_path, capsys):
    assert main(["--format", "yaml"]) == EXIT_USAGE


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("DET001", "PROTO101", "STATE200", "LINT903"):
        assert rule_id in out


def test_explicit_path_narrows_the_run(tmp_path, capsys):
    write_project(tmp_path, "import time\nstamp = time.time()\n")
    clean = tmp_path / "src" / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    code = main(["--root", str(tmp_path), "src/clean.py"])
    assert code == EXIT_CLEAN
