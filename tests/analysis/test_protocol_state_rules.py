"""PROTO1xx / STATE2xx rules against small synthetic protocol trees."""

import textwrap

from tests.analysis.util import run_lint, rules_fired

MESSAGES_OK = textwrap.dedent(
    """
    class Message:
        pass

    class Ping(Message):
        def signable_bytes(self):
            enc = XdrEncoder()
            enc.pack_string("PING")
            return enc.getvalue()

    class Pong(Message):
        def signable_bytes(self):
            enc = XdrEncoder()
            enc.pack_string("PONG")
            return enc.getvalue()
    """
)

DISPATCH_OK = textwrap.dedent(
    """
    def on_message(message):
        if isinstance(message, Ping):
            return "ping"
        elif isinstance(message, (Pong,)):
            return "pong"
    """
)


def lint_protocol(tmp_path, messages_src, dispatch_src):
    return run_lint(
        tmp_path,
        {"src/bft/messages.py": messages_src, "src/bft/replica.py": dispatch_src},
        det_scope=[],
        protocol_messages="src/bft/messages.py",
        protocol_dispatch=["src/bft"],
    )


def test_well_formed_protocol_is_clean(tmp_path):
    result = lint_protocol(tmp_path, MESSAGES_OK, DISPATCH_OK)
    assert result.clean


def test_proto100_missing_signable_bytes(tmp_path):
    messages = MESSAGES_OK + textwrap.dedent(
        """
        class Nack(Message):
            pass
        """
    )
    dispatch = DISPATCH_OK.replace("(Pong,)", "(Pong, Nack)")
    result = lint_protocol(tmp_path, messages, dispatch)
    assert rules_fired(result) == ["PROTO100"]
    assert "Nack" in result.violations[0].message


def test_proto101_unhandled_message(tmp_path):
    result = lint_protocol(
        tmp_path, MESSAGES_OK, "def on_message(message):\n    return None\n"
    )
    fired = rules_fired(result)
    assert fired == ["PROTO101"]
    assert len(result.violations) == 2  # both Ping and Pong lack handlers


def test_proto102_duplicate_wire_tag(tmp_path):
    messages = MESSAGES_OK.replace('pack_string("PONG")', 'pack_string("PING")')
    result = lint_protocol(tmp_path, messages, DISPATCH_OK)
    assert rules_fired(result) == ["PROTO102"]
    assert "collides" in result.violations[0].message


def test_proto102_missing_wire_tag(tmp_path):
    messages = MESSAGES_OK.replace(
        'enc.pack_string("PONG")\n', "enc.pack_u64(1)\n", 1
    ).replace('enc.pack_string("PONG")', "enc.pack_u64(1)")
    result = lint_protocol(tmp_path, messages, DISPATCH_OK)
    assert "PROTO102" in rules_fired(result)


def test_proto103_execute_without_nondet(tmp_path):
    source = textwrap.dedent(
        """
        class BrokenMachine(StateMachine):
            def execute(self, op, client_id, read_only=False):
                return b""
        """
    )
    result = run_lint(tmp_path, {"src/svc.py": source}, det_scope=[])
    assert "PROTO103" in rules_fired(result)


def test_proto103_accepts_timestamp_micros(tmp_path):
    source = textwrap.dedent(
        """
        class GoodWrapper(ConformanceWrapper):
            def execute(self, op, client_id, timestamp_micros, read_only=False):
                return b""

            def get_obj(self, index):
                return b""

            def put_objs(self, objects):
                pass
        """
    )
    result = run_lint(tmp_path, {"src/svc.py": source}, det_scope=[])
    assert result.clean


def test_state200_incomplete_wrapper(tmp_path):
    source = textwrap.dedent(
        """
        class HalfWrapper(ConformanceWrapper):
            def execute(self, op, client_id, timestamp_micros, read_only=False):
                return b""

            def get_obj(self, index):
                return b""
        """
    )
    result = run_lint(tmp_path, {"src/svc.py": source}, det_scope=[])
    assert rules_fired(result) == ["STATE200"]
    assert "put_objs" in result.violations[0].message


def test_state201_incomplete_state_machine(tmp_path):
    source = textwrap.dedent(
        """
        class HalfMachine(StateMachine):
            def execute(self, op, client_id, nondet, read_only=False):
                return b""

            def take_checkpoint(self, seqno):
                return b""
        """
    )
    result = run_lint(tmp_path, {"src/svc.py": source}, det_scope=[])
    assert rules_fired(result) == ["STATE201"]
    assert "install_fetched" in result.violations[0].message


def test_unrelated_classes_ignored(tmp_path):
    source = textwrap.dedent(
        """
        class Plain:
            def execute(self, op):
                return op
        """
    )
    result = run_lint(tmp_path, {"src/svc.py": source}, det_scope=[])
    assert result.clean
