"""Inline suppressions, the meta rules that police them, and config loading
(both the tomllib path and the pre-3.11 fallback parser)."""

import textwrap

from repro.analysis.config import (
    LintConfig,
    _fallback_parse_lint_table,
    load_config,
)
from tests.analysis.util import lint_det_source, rules_fired

# -- suppressions -------------------------------------------------------------


def test_same_line_suppression(tmp_path):
    result = lint_det_source(
        tmp_path,
        "key = id(object())  # repro: allow[DET006] debug label only, never stored\n",
    )
    assert result.clean
    assert result.suppressions_used == 1


def test_preceding_line_suppression(tmp_path):
    result = lint_det_source(
        tmp_path,
        textwrap.dedent(
            """
            # repro: allow[DET006] debug label only, never stored
            key = id(object())
            """
        ),
    )
    assert result.clean


def test_multi_rule_suppression(tmp_path):
    result = lint_det_source(
        tmp_path,
        "import time\n"
        "x = (time.time(), hash('a'))  # repro: allow[DET001,DET008] test fixture data\n",
    )
    assert result.clean
    assert result.suppressions_used == 1


def test_suppression_only_covers_its_line(tmp_path):
    result = lint_det_source(
        tmp_path,
        "key = id(object())  # repro: allow[DET006] first one is fine\n"
        "other = id(object())\n",
    )
    assert rules_fired(result) == ["DET006"]
    assert result.violations[0].line == 2


def test_unknown_rule_id_is_violation(tmp_path):
    result = lint_det_source(
        tmp_path, "x = 1  # repro: allow[DET999] no such rule\n"
    )
    assert rules_fired(result) == ["LINT901"]


def test_missing_reason_does_not_suppress(tmp_path):
    result = lint_det_source(
        tmp_path, "key = id(object())  # repro: allow[DET006]\n"
    )
    fired = rules_fired(result)
    assert "DET006" in fired and "LINT902" in fired


def test_stale_suppression_is_violation(tmp_path):
    result = lint_det_source(
        tmp_path, "x = 1  # repro: allow[DET006] nothing here violates it\n"
    )
    assert rules_fired(result) == ["LINT903"]


def test_suppressing_disabled_rule_is_not_stale(tmp_path):
    result = lint_det_source(
        tmp_path,
        "key = id(object())  # repro: allow[DET006] reason\n",
        disable=["DET006"],
    )
    assert result.clean


def test_syntax_error_reported_not_crash(tmp_path):
    result = lint_det_source(tmp_path, "def broken(:\n")
    assert rules_fired(result) == ["LINT904"]


# -- config loading -----------------------------------------------------------

PYPROJECT = textwrap.dedent(
    """
    [project]
    name = "demo"

    [tool.repro.lint]
    paths = ["lib"]
    deterministic-scope = [
        "lib/replica",
        "lib/wrapper.py",
    ]
    exclude = ["lib/vendored"]
    disable = ["DET007"]
    protocol-messages = "lib/messages.py"
    protocol-dispatch = ["lib/replica"]
    """
)


def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(PYPROJECT, encoding="utf-8")
    config = load_config(project_root=tmp_path)
    assert config.paths == ["lib"]
    assert config.deterministic_scope == ["lib/replica", "lib/wrapper.py"]
    assert config.exclude == ["lib/vendored"]
    assert config.disable == ["DET007"]
    assert config.protocol_messages == "lib/messages.py"
    assert config.is_deterministic_scope("lib/replica/fs.py")
    assert not config.is_deterministic_scope("lib/client.py")
    assert config.is_excluded("lib/vendored/thing.py")


def test_load_config_defaults_without_block(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n", encoding="utf-8")
    config = load_config(project_root=tmp_path)
    assert config.paths == ["src"]
    assert config.is_deterministic_scope("src/repro/oodb/db.py")


def test_fallback_parser_matches_tomllib():
    table = _fallback_parse_lint_table(PYPROJECT)
    assert table["paths"] == ["lib"]
    assert table["deterministic-scope"] == ["lib/replica", "lib/wrapper.py"]
    assert table["disable"] == ["DET007"]
    assert table["protocol-messages"] == "lib/messages.py"


def test_fallback_parser_ignores_other_tables():
    table = _fallback_parse_lint_table(
        "[tool.other]\npaths = ['nope']\n[tool.repro.lint]\npaths = ['yes']\n"
    )
    assert table["paths"] == ["yes"]


def test_scope_matching_is_prefix_safe():
    config = LintConfig(project_root=None, deterministic_scope=["src/repro/base"])
    assert config.is_deterministic_scope("src/repro/base/wrapper.py")
    assert not config.is_deterministic_scope("src/repro/basement/wrapper.py")
