"""Shared helpers for the linter tests: build a throwaway project tree and
lint it with an explicit config."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintResult, lint_project


def run_lint(
    tmp_path: Path,
    files: Dict[str, str],
    det_scope: Optional[List[str]] = None,
    protocol_messages: str = "does/not/exist.py",
    protocol_dispatch: Optional[List[str]] = None,
    disable: Optional[List[str]] = None,
) -> LintResult:
    """Write ``files`` (relpath -> source) under ``tmp_path`` and lint them."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    config = LintConfig(
        project_root=tmp_path,
        paths=sorted({relpath.split("/")[0] for relpath in files}),
        deterministic_scope=det_scope if det_scope is not None else ["src"],
        protocol_messages=protocol_messages,
        protocol_dispatch=protocol_dispatch if protocol_dispatch is not None else [],
        disable=disable if disable is not None else [],
    )
    return lint_project(config)


def lint_det_source(tmp_path: Path, source: str, disable=None) -> LintResult:
    """Lint one module that sits inside the deterministic scope."""
    return run_lint(tmp_path, {"src/module.py": source}, disable=disable)


def rules_fired(result: LintResult) -> List[str]:
    return sorted({violation.rule for violation in result.violations})
