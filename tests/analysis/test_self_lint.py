"""Self-lint: the repository must satisfy its own determinism and protocol
invariants, and the linter must catch the canonical regression (a fileserver
swapping its seeded RNG for wall-clock/unseeded randomness).

This is the CI tripwire the linter exists for: if a change introduces
unsuppressed nondeterminism into replica code, deletes a message handler, or
breaks a wire tag, this test fails alongside ``python -m repro lint``.
"""

from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.engine import lint_project
from tests.analysis.util import rules_fired, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_lint_clean():
    config = load_config(project_root=REPO_ROOT)
    result = lint_project(config)
    rendered = "\n".join(v.render() for v in result.violations)
    assert result.clean, f"repository violates its own invariants:\n{rendered}"
    # The run must actually cover the tree (guard against an empty config
    # silently passing) and exercise the documented suppressions.
    assert result.files_checked > 50
    assert result.suppressions_used >= 2


def _mutated_fileserver(replacement: str) -> str:
    source = (REPO_ROOT / "src/repro/nfs/fileserver/memfs.py").read_text(
        encoding="utf-8"
    )
    seeded = "random.Random(seed)"
    assert seeded in source, "memfs no longer seeds its RNG; update this test"
    return source.replace(seeded, replacement)


def test_unseeded_rng_mutation_is_caught(tmp_path):
    result = run_lint(
        tmp_path,
        {"src/fileserver/memfs.py": _mutated_fileserver("random.Random()")},
        det_scope=["src/fileserver"],
    )
    assert "DET002" in rules_fired(result)
    violation = next(v for v in result.violations if v.rule == "DET002")
    assert violation.path == "src/fileserver/memfs.py"
    assert violation.line > 0


def test_wall_clock_seed_mutation_is_caught(tmp_path):
    mutated = "import time\n" + _mutated_fileserver(
        "random.Random(int(time.time()))"
    )
    result = run_lint(
        tmp_path,
        {"src/fileserver/memfs.py": mutated},
        det_scope=["src/fileserver"],
    )
    assert "DET001" in rules_fired(result)


def test_removing_a_dispatch_arm_is_caught(tmp_path):
    replica = (REPO_ROOT / "src/repro/bft/replica.py").read_text(encoding="utf-8")
    arm = "elif isinstance(message, Status):\n            self.on_status(message, src)\n"
    assert arm in replica, "replica dispatch changed shape; update this test"
    files = {
        "src/repro/bft/replica.py": replica.replace(arm, ""),
        "src/repro/bft/messages.py": (
            REPO_ROOT / "src/repro/bft/messages.py"
        ).read_text(encoding="utf-8"),
    }
    result = run_lint(
        tmp_path,
        files,
        det_scope=[],
        protocol_messages="src/repro/bft/messages.py",
        protocol_dispatch=["src/repro/bft"],
    )
    assert "PROTO101" in rules_fired(result)
    assert any("Status" in v.message for v in result.violations)
