"""DET0xx rules: each fires on the nondeterministic form and stays quiet on
the deterministic one (the bad/good pairs from docs/determinism.md)."""

import textwrap

from tests.analysis.util import lint_det_source, rules_fired, run_lint


def lint(tmp_path, source, **kwargs):
    return lint_det_source(tmp_path, textwrap.dedent(source), **kwargs)


# -- DET001 wall clocks -------------------------------------------------------


def test_time_time_flagged(tmp_path):
    result = lint(tmp_path, "import time\nstamp = time.time()\n")
    assert rules_fired(result) == ["DET001"]
    assert result.violations[0].line == 2


def test_datetime_now_flagged(tmp_path):
    result = lint(
        tmp_path,
        """
        from datetime import datetime
        when = datetime.now()
        """,
    )
    assert rules_fired(result) == ["DET001"]


def test_aliased_time_import_flagged(tmp_path):
    result = lint(tmp_path, "import time as t\nstamp = t.monotonic()\n")
    assert rules_fired(result) == ["DET001"]


def test_agreed_timestamp_not_flagged(tmp_path):
    result = lint(
        tmp_path,
        """
        def execute(op, client_id, timestamp_micros):
            return timestamp_micros + 1
        """,
    )
    assert result.clean


# -- DET002 randomness --------------------------------------------------------


def test_module_level_random_flagged(tmp_path):
    result = lint(tmp_path, "import random\nx = random.random()\n")
    assert rules_fired(result) == ["DET002"]


def test_unseeded_random_instance_flagged(tmp_path):
    result = lint(tmp_path, "import random\nrng = random.Random()\n")
    assert rules_fired(result) == ["DET002"]


def test_seeded_random_instance_allowed(tmp_path):
    result = lint(tmp_path, "import random\nrng = random.Random(42)\n")
    assert result.clean


def test_seeded_instance_methods_allowed(tmp_path):
    result = lint(
        tmp_path,
        """
        import random

        class FS:
            def __init__(self, seed):
                self._rng = random.Random(seed)

            def salt(self):
                return self._rng.getrandbits(16)
        """,
    )
    assert result.clean


def test_system_random_always_flagged(tmp_path):
    result = lint(tmp_path, "import random\nrng = random.SystemRandom(1)\n")
    assert rules_fired(result) == ["DET002"]


def test_from_import_random_flagged(tmp_path):
    result = lint(tmp_path, "from random import shuffle\nshuffle([1, 2])\n")
    assert rules_fired(result) == ["DET002"]


# -- DET003 entropy -----------------------------------------------------------


def test_urandom_uuid_secrets_flagged(tmp_path):
    result = lint(
        tmp_path,
        """
        import os, uuid, secrets
        a = os.urandom(8)
        b = uuid.uuid4()
        c = secrets.token_bytes(8)
        """,
    )
    assert rules_fired(result) == ["DET003"]
    assert len(result.violations) == 3


# -- DET004 ambient environment ----------------------------------------------


def test_open_and_environ_flagged(tmp_path):
    result = lint(
        tmp_path,
        """
        import os
        data = open("/etc/hostname").read()
        home = os.environ["HOME"]
        """,
    )
    assert rules_fired(result) == ["DET004"]
    assert len(result.violations) == 2


def test_socket_import_flagged(tmp_path):
    result = lint(tmp_path, "import socket\n")
    assert rules_fired(result) == ["DET004"]


def test_method_named_open_not_flagged(tmp_path):
    result = lint(
        tmp_path,
        """
        class Box:
            def open(self):
                return 1

        Box().open()
        """,
    )
    assert result.clean


# -- DET005 concurrency -------------------------------------------------------


def test_threading_import_flagged(tmp_path):
    result = lint(tmp_path, "import threading\n")
    assert rules_fired(result) == ["DET005"]


def test_async_def_flagged(tmp_path):
    result = lint(tmp_path, "async def work():\n    return 1\n")
    assert rules_fired(result) == ["DET005"]


def test_time_sleep_flagged(tmp_path):
    result = lint(tmp_path, "import time\ntime.sleep(1)\n")
    assert rules_fired(result) == ["DET005"]


# -- DET006 id() --------------------------------------------------------------


def test_id_call_flagged(tmp_path):
    result = lint(tmp_path, "key = id(object())\n")
    assert rules_fired(result) == ["DET006"]


# -- DET007 set iteration -----------------------------------------------------


def test_for_over_set_call_flagged(tmp_path):
    result = lint(
        tmp_path,
        """
        def digest_all(items):
            out = []
            for item in set(items):
                out.append(item)
            return out
        """,
    )
    assert rules_fired(result) == ["DET007"]


def test_comprehension_over_set_literal_flagged(tmp_path):
    result = lint(tmp_path, "values = [x for x in {1, 2, 3}]\n")
    assert rules_fired(result) == ["DET007"]


def test_list_of_set_flagged(tmp_path):
    result = lint(tmp_path, "values = list(set([3, 1, 2]))\n")
    assert rules_fired(result) == ["DET007"]


def test_sorted_set_allowed(tmp_path):
    result = lint(
        tmp_path,
        """
        def stable(items):
            return sorted(set(items))
        """,
    )
    assert result.clean


def test_membership_test_allowed(tmp_path):
    result = lint(
        tmp_path,
        """
        live = set([1, 2, 3])
        present = 2 in live
        """,
    )
    assert result.clean


# -- DET008 hash() ------------------------------------------------------------


def test_builtin_hash_flagged(tmp_path):
    result = lint(tmp_path, "shard = hash('client-7') % 4\n")
    assert rules_fired(result) == ["DET008"]


# -- scoping ------------------------------------------------------------------


def test_det_rules_skip_files_outside_scope(tmp_path):
    result = run_lint(
        tmp_path,
        {"src/client/tool.py": "import time\nstamp = time.time()\n"},
        det_scope=["src/replica"],
    )
    assert result.clean


def test_disable_turns_rule_off(tmp_path):
    result = lint(tmp_path, "key = id(object())\n", disable=["DET006"])
    assert result.clean
