"""Sharded exploration: plans against multi-group deployments, the
cross-shard atomicity oracle, the planted 2PC regression, and artifacts."""

import pytest

from repro.explore.plan import FaultPlan, FaultStep, generate_plan
from repro.explore.sharded import explore_sharded, replay_sharded, run_sharded_plan
from repro.explore.shrink import artifact_dict, load_artifact, write_artifact


def test_benign_plan_holds_all_oracles():
    plan = generate_plan(12345, requests=16)
    outcome = run_sharded_plan(plan, num_shards=2)
    assert outcome.violation is None
    assert outcome.completed > 0
    # The workload exercised the transaction layer.
    assert outcome.counters["txns_started"] > 0


def test_runs_are_deterministic():
    plan = generate_plan(777, requests=12)
    first = run_sharded_plan(plan, num_shards=2)
    second = run_sharded_plan(plan, num_shards=2)
    assert first.to_dict() == second.to_dict()


def test_single_group_features_are_rejected():
    overloaded = FaultPlan(
        seed=1,
        requests=8,
        steps=(FaultStep(at=0.1, kind="client_swarm", rate=400.0),),
    )
    with pytest.raises(ValueError):
        run_sharded_plan(overloaded, num_shards=2)
    with pytest.raises(ValueError):
        run_sharded_plan(FaultPlan(seed=1, requests=8, topology="wan3"), num_shards=2)
    with pytest.raises(ValueError):
        run_sharded_plan(FaultPlan(seed=1, requests=8), num_shards=2, plant="nope")


def test_planted_split_brain_is_caught_and_shrunk():
    result = explore_sharded(
        budget=5, seed=0, requests=16, num_shards=2, plant="split-brain-decide"
    )
    assert result.found
    assert result.violation.oracle == "cross-shard-atomicity"
    assert "committed at shard0" in result.violation.detail
    assert result.shrunk_plan is not None
    assert len(result.shrunk_plan.steps) <= len(result.plan.steps)
    assert result.shrunk_violation.oracle == "cross-shard-atomicity"


def test_shrunk_plan_replays_to_the_same_violation():
    result = explore_sharded(
        budget=5, seed=0, requests=16, num_shards=2, plant="split-brain-decide"
    )
    outcome = replay_sharded(result.shrunk_plan, num_shards=2, plant="split-brain-decide")
    assert outcome.violation is not None
    assert outcome.violation.oracle == result.shrunk_violation.oracle
    assert outcome.violation.detail == result.shrunk_violation.detail


def test_artifact_records_the_shard_count(tmp_path):
    result = explore_sharded(
        budget=5, seed=0, requests=16, num_shards=2, plant="split-brain-decide"
    )
    path = tmp_path / "repro.json"
    write_artifact(path, result.shrunk_plan, result.shrunk_violation, shards=2)
    plan, recorded, _plant = load_artifact(path)
    assert plan == result.shrunk_plan
    assert recorded["oracle"] == "cross-shard-atomicity"
    import json

    assert json.loads(path.read_text())["shards"] == 2


def test_forged_decide_is_rejected_not_split_brained():
    """The hardened decide path turns a coordinator forging certificate-less
    commits from a split-brain catastrophe into a non-event: every forged
    decide is refused, nothing applies, and no oracle fires."""
    result = explore_sharded(
        budget=3, seed=0, requests=16, num_shards=2, plant="forged-decide", shrink=False
    )
    assert not result.found
    rejected = sum(
        v["outcome"]["counters"]["txn_decides_rejected"] for v in result.verdicts
    )
    applied = sum(
        v["outcome"]["counters"]["txn_commits_applied"] for v in result.verdicts
    )
    assert rejected > 0
    assert applied == 0


def test_destruction_plan_reconstructs_and_stays_safe():
    plan = generate_plan(1, destruction=True)
    assert plan.has_destruction()
    outcome = run_sharded_plan(plan, num_shards=2)
    assert outcome.violation is None
    assert outcome.counters["fusion_reconstructions_completed"] == 1
    assert outcome.counters["fusion_reconstructions_failed"] == 0
    assert outcome.counters["fusion_replicas_seeded"] == 4
    assert outcome.counters["fusion_destroys_skipped"] == 0


def test_destruction_runs_are_deterministic():
    plan = generate_plan(2, destruction=True)
    first = run_sharded_plan(plan, num_shards=2)
    second = run_sharded_plan(plan, num_shards=2)
    assert first.to_dict() == second.to_dict()


def test_destruction_is_rejected_by_single_group_runs():
    from repro.explore.runner import run_plan

    plan = generate_plan(3, destruction=True)
    with pytest.raises(ValueError):
        run_plan(plan)


def test_default_plans_never_destroy():
    """``destruction`` is opt-in: the default plan stream must stay
    byte-identical across versions, destroy steps included."""
    for seed in range(30):
        assert not generate_plan(seed).has_destruction()


def test_single_group_artifacts_carry_no_shard_key():
    plan = generate_plan(1, requests=8)
    violation_stub = type(
        "V", (), {"to_dict": lambda self: {"oracle": "x", "detail": "d"}}
    )()
    assert "shards" not in artifact_dict(plan, violation_stub)
    assert artifact_dict(plan, violation_stub, shards=4)["shards"] == 4
