"""Shrinker properties (with synthetic predicates — no cluster needed) and
repro-artifact round-trips."""

import json

import pytest

from repro.explore.oracles import Violation
from repro.explore.plan import FaultPlan, FaultStep
from repro.explore.shrink import (
    ShrinkResult,
    load_artifact,
    shrink_plan,
    write_artifact,
)


def _violation(oracle="prefix"):
    return Violation(oracle=oracle, detail="synthetic", time=1.0, event_index=10)


def _steps(n):
    return tuple(FaultStep(at=0.1 * (i + 1), kind="recover", target="R1") for i in range(n))


def _plan(steps, requests=32, perturb_seed=7, drop_rate=0.03, recovery_period=2.5):
    return FaultPlan(
        seed=1,
        requests=requests,
        steps=steps,
        perturb_seed=perturb_seed,
        drop_rate=drop_rate,
        recovery_period=recovery_period,
    )


def test_shrink_finds_single_culprit_step():
    culprit = FaultStep(at=0.4, kind="equivocate", target="R0")
    plan = _plan(_steps(5) + (culprit,))

    def violates(candidate):
        return _violation() if culprit in candidate.steps else None

    result = shrink_plan(plan, _violation(), violates)
    assert result.plan.steps == (culprit,)
    # Parameter simplification also applies once steps are minimal.
    assert result.plan.perturb_seed is None
    assert result.plan.drop_rate == 0.0
    assert result.plan.recovery_period == 0.0
    assert result.plan.requests <= 8


def test_shrink_keeps_interacting_pair():
    s1 = FaultStep(at=0.2, kind="crash", target="R2")
    s2 = FaultStep(at=0.6, kind="restart", target="R2")
    plan = _plan(_steps(4) + (s1, s2))

    def violates(candidate):
        both = s1 in candidate.steps and s2 in candidate.steps
        return _violation() if both else None

    result = shrink_plan(plan, _violation(), violates)
    assert set(result.plan.steps) == {s1, s2}


def test_shrink_requires_same_oracle():
    """A candidate that violates a *different* oracle is not a reduction."""
    plan = _plan(_steps(4))

    def violates(candidate):
        if len(candidate.steps) == len(plan.steps):
            return _violation("prefix")
        return _violation("liveness")  # smaller plans fail differently

    result = shrink_plan(plan, _violation("prefix"), violates)
    assert result.plan.steps == plan.steps
    assert result.violation.oracle == "prefix"


def test_shrink_respects_run_budget():
    plan = _plan(_steps(8))
    calls = []

    def violates(candidate):
        calls.append(candidate)
        return _violation()

    result = shrink_plan(plan, _violation(), violates, max_runs=5)
    assert len(calls) <= 5
    assert result.runs <= 5


def test_shrink_result_still_violates():
    """The returned plan's violation came from an actual predicate run."""
    plan = _plan(_steps(6))

    def violates(candidate):
        return _violation() if candidate.steps else None

    result = shrink_plan(plan, _violation(), violates)
    assert isinstance(result, ShrinkResult)
    assert len(result.plan.steps) == 1
    assert violates(result.plan) is not None


# -- artifacts --------------------------------------------------------------------


def test_artifact_roundtrip(tmp_path):
    plan = _plan(_steps(2))
    violation = _violation("commit-agreement")
    path = tmp_path / "repro.json"
    write_artifact(path, plan, violation, plant="weak-prepare-quorum", original_plan=_plan(_steps(5)))
    loaded_plan, recorded, plant = load_artifact(path)
    assert loaded_plan == plan
    assert recorded == violation.to_dict()
    assert plant == "weak-prepare-quorum"


def test_artifact_is_stable_json(tmp_path):
    plan = _plan(_steps(1))
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    write_artifact(path_a, plan, _violation())
    write_artifact(path_b, plan, _violation())
    assert path_a.read_text() == path_b.read_text()


def test_load_artifact_rejects_bad_version(tmp_path):
    path = tmp_path / "bad.json"
    data = {"version": 99, "plan": _plan(()).to_dict(), "violation": _violation().to_dict()}
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_artifact(path)
