"""Implementation-fault steps in the exploration DSL and runner:
``poison_request`` (deterministic input-triggered crash, contained by the
supervisor) and ``corrupt_object`` (silent state corruption, contained by the
scrubber)."""

from repro.explore.plan import (
    IMPLEMENTATION_KINDS,
    FaultPlan,
    FaultStep,
    generate_plan,
    validate_plan,
)
from repro.explore.runner import run_plan


def test_corrupt_object_index_round_trips():
    step = FaultStep(at=0.25, kind="corrupt_object", target="R2", index=5)
    plan = FaultPlan(seed=7, requests=8, steps=(step,))
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.steps[0].index == 5


def test_implementation_steps_need_a_target():
    plan = FaultPlan(seed=1, requests=8, steps=(FaultStep(at=0.1, kind="poison_request"),))
    assert any("needs a target" in problem for problem in validate_plan(plan))


def test_implementation_faults_share_the_f_budget_with_byzantine():
    plan = FaultPlan(
        seed=1,
        requests=8,
        steps=(
            FaultStep(at=0.1, kind="poison_request", target="R1"),
            FaultStep(at=0.2, kind="equivocate", target="R2"),
        ),
    )
    assert any("faulty" in problem for problem in validate_plan(plan))
    # Both faults on the same replica stay within f=1.
    plan = FaultPlan(
        seed=1,
        requests=8,
        steps=(
            FaultStep(at=0.1, kind="poison_request", target="R1"),
            FaultStep(at=0.2, kind="corrupt_object", target="R1", index=3),
        ),
    )
    assert validate_plan(plan) == []


def test_crash_overlapping_a_poisoned_replica_is_flagged():
    plan = FaultPlan(
        seed=1,
        requests=8,
        steps=(
            FaultStep(at=0.1, kind="poison_request", target="R1"),
            FaultStep(at=0.2, kind="crash", target="R2"),
            FaultStep(at=0.4, kind="restart", target="R2"),
        ),
    )
    assert any("overlap the poisoned" in problem for problem in validate_plan(plan))


def test_generated_impl_plans_are_valid_and_contain_impl_steps():
    for seed in range(12):
        plan = generate_plan(seed, implementation_faults=True)
        assert validate_plan(plan) == [], (seed, validate_plan(plan))
        # The implementation group is inserted ahead of the step budget, so
        # it always survives.
        assert any(step.kind in IMPLEMENTATION_KINDS for step in plan.steps), seed


def test_default_generation_is_unchanged_by_the_new_kinds():
    # Opt-out plans draw no extra randomness: byte-identical to what the
    # pinned determinism tests in test_runner.py expect.
    assert generate_plan(5) == generate_plan(5, implementation_faults=False)


def test_poisoned_request_is_masked_without_violation():
    plan = FaultPlan(
        seed=3,
        requests=16,
        steps=(FaultStep(at=0.2, kind="poison_request", target="R2"),),
    )
    outcome = run_plan(plan)
    assert outcome.violation is None
    assert outcome.completed == 16  # the workload never saw the crash


def test_corrupt_object_is_scrubbed_without_violation():
    plan = FaultPlan(
        seed=4,
        requests=16,
        steps=(FaultStep(at=0.3, kind="corrupt_object", target="R1", index=2),),
    )
    outcome = run_plan(plan)
    assert outcome.violation is None
    assert outcome.completed == 16
