"""End-to-end exploration: determinism, clean runs, planted-bug detection,
shrinking, and artifact replay.  These are the acceptance tests for the
exploration subsystem — a planted protocol regression must be found within a
small budget, shrink to a handful of fault steps, and replay exactly."""

import json

import pytest

from repro.explore import (
    FaultPlan,
    FaultStep,
    explore,
    generate_plan,
    load_artifact,
    replay,
    run_plan,
)
from repro.explore.shrink import write_artifact
from repro.faults.plant import PLANTED_BUGS


def test_clean_plans_hold_every_oracle():
    """An honest implementation passes every oracle on generated plans."""
    result = explore(budget=6, seed=0, requests=12, shrink=False)
    assert not result.found, result.violation
    assert result.plans_run == 6
    assert len(result.verdicts) == 6


def test_exploration_is_deterministic():
    def session():
        return explore(budget=4, seed=5, requests=10, shrink=False).to_dict()

    first, second = session(), session()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_run_plan_verdict_is_deterministic():
    plan = generate_plan(1234, requests=10)
    a = run_plan(plan)
    b = run_plan(plan)
    assert a.to_dict() == b.to_dict()


def test_run_plan_rejects_unknown_plant():
    with pytest.raises(ValueError):
        run_plan(generate_plan(0, requests=4), plant="no-such-bug")


@pytest.mark.parametrize(
    "plant,seed,budget",
    [("weak-prepare-quorum", 0, 10), ("blind-checkpoint-certs", 1, 10)],
)
def test_planted_bug_found_and_shrunk(plant, seed, budget, tmp_path):
    """The acceptance criterion: exploration finds the planted regression
    within budget, shrinks the repro to <= 3 fault steps, and the artifact
    replays to the exact same violation."""
    assert plant in PLANTED_BUGS
    result = explore(budget=budget, seed=seed, requests=16, plant=plant)
    assert result.found, f"{plant} not found in {budget} plans"
    assert result.shrunk_plan is not None
    assert len(result.shrunk_plan.steps) <= 3

    path = tmp_path / "repro.json"
    write_artifact(path, result.shrunk_plan, result.shrunk_violation, plant=plant)
    loaded_plan, recorded, loaded_plant = load_artifact(path)
    outcome = replay(loaded_plan, plant=loaded_plant)
    assert outcome.violation is not None
    assert outcome.violation.oracle == recorded["oracle"]
    assert outcome.violation.detail == recorded["detail"]
    assert outcome.violation.event_index == recorded["event_index"]


def test_weak_quorum_violation_is_a_safety_oracle():
    """The weakened-quorum bug must break a *safety* property (commit
    agreement or execution order), not merely stall the cluster."""
    result = explore(budget=10, seed=0, requests=16, plant="weak-prepare-quorum", shrink=False)
    assert result.found
    assert result.violation.oracle in ("commit-agreement", "prefix", "at-most-once")


def test_clean_replay_of_violating_plan_passes():
    """The violation needs the plant: replaying the same plan against the
    honest implementation passes every oracle (it is a regression test, not
    an environment artifact)."""
    result = explore(budget=10, seed=0, requests=16, plant="weak-prepare-quorum", shrink=False)
    assert result.found
    outcome = run_plan(result.plan, plant=None)
    assert outcome.violation is None


def test_byzantine_steps_do_not_trip_oracles_on_honest_cluster():
    """Allowed Byzantine behavior (<= f, own keys only) must be masked by an
    honest implementation: inject each kind directly and expect no violation."""
    for kind in ("equivocate", "lie_checkpoint", "corrupt_votes", "corrupt_results"):
        plan = FaultPlan(
            seed=11,
            requests=12,
            steps=(FaultStep(at=0.1, kind=kind, target="R1"),),
        )
        outcome = run_plan(plan)
        assert outcome.violation is None, (kind, outcome.violation)


def test_explore_stops_at_first_violation():
    result = explore(budget=50, seed=0, requests=16, plant="weak-prepare-quorum", shrink=False)
    assert result.found
    assert result.plans_run < 50
    assert result.verdicts[-1]["outcome"]["violation"] is not None
