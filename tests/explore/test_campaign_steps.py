"""Campaign steps run through the ordinary explore runner: a plan that
names a topology and mixes geo-scale steps with classic faults executes via
``run_plan`` under the full oracle suite, deterministically."""

from repro.explore.plan import FaultPlan, FaultStep, validate_plan
from repro.explore.runner import run_plan


def campaign_plan():
    return FaultPlan(
        seed=13,
        requests=8,
        topology="wan3",
        steps=(
            FaultStep(at=2.0, kind="partition_storm", count=2, duration=10.0),
            FaultStep(at=4.0, kind="crash", target="R3"),
            FaultStep(at=8.0, kind="latency_spike", factor=2.0, duration=8.0),
            FaultStep(at=10.0, kind="restart", target="R3"),
        ),
    )


def test_run_plan_executes_campaign_steps():
    plan = campaign_plan()
    assert validate_plan(plan) == []
    outcome = run_plan(plan, liveness_timeout=120.0)
    assert outcome.violation is None
    assert outcome.completed == plan.requests
    assert outcome.counters.get("storm_cuts") == 2
    assert outcome.counters.get("latency_spikes") == 1


def test_campaign_run_plan_is_deterministic():
    a = run_plan(campaign_plan(), liveness_timeout=120.0)
    b = run_plan(campaign_plan(), liveness_timeout=120.0)
    assert (a.violation, a.completed, a.events) == (b.violation, b.completed, b.events)
    assert a.counters == b.counters


def test_flat_plan_unaffected_by_campaign_support():
    """A plan with no topology and no campaign steps takes the historical
    path: same verdict shape, no campaign counters."""
    plan = FaultPlan(
        seed=1,
        requests=4,
        steps=(FaultStep(at=0.5, kind="crash", target="R1", duration=2.0),),
    )
    outcome = run_plan(plan)
    assert outcome.violation is None
    assert outcome.completed == 4
    assert not outcome.counters.get("storm_cuts")
