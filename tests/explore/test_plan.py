"""Fault-plan DSL: codec round-trips, seeded generation, validation."""

import pytest

from repro.explore.plan import (
    BENIGN_KINDS,
    BYZANTINE_KINDS,
    FaultPlan,
    FaultStep,
    generate_plan,
    validate_plan,
)


def test_plan_json_roundtrip_is_identity():
    for seed in range(30):
        plan = generate_plan(seed)
        assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_json_is_canonical():
    plan = generate_plan(4)
    assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()


def test_same_seed_generates_byte_identical_plans():
    for seed in (0, 1, 17, 12345):
        assert generate_plan(seed).to_json() == generate_plan(seed).to_json()


def test_different_seeds_generate_different_plans():
    plans = {generate_plan(seed).to_json() for seed in range(20)}
    assert len(plans) > 10  # collisions allowed, but the stream must vary


def test_generated_plans_are_valid():
    for seed in range(50):
        plan = generate_plan(seed)
        assert validate_plan(plan) == [], (seed, plan.to_json())


def test_generated_plans_respect_max_steps_and_f():
    for seed in range(50):
        plan = generate_plan(seed, max_steps=4)
        assert len(plan.steps) <= 4
        assert len(plan.byzantine_targets()) <= 1  # f = 1


def test_steps_sorted_by_time():
    for seed in range(30):
        times = [step.at for step in generate_plan(seed).steps]
        assert times == sorted(times)


def test_step_kinds_partitioned():
    assert not (BENIGN_KINDS & BYZANTINE_KINDS)
    for seed in range(30):
        for step in generate_plan(seed).steps:
            assert step.kind in BENIGN_KINDS | BYZANTINE_KINDS


def test_sparse_step_encoding_omits_defaults():
    step = FaultStep(at=0.5, kind="crash", target="R1")
    encoded = step.to_dict()
    assert "fraction" not in encoded and "groups" not in encoded
    assert FaultStep.from_dict(encoded) == step


def test_validate_rejects_unpaired_crash():
    plan = FaultPlan(
        seed=1, requests=8, steps=(FaultStep(at=0.1, kind="crash", target="R1"),)
    )
    assert any("crash" in problem for problem in validate_plan(plan))


def test_validate_rejects_too_many_byzantine():
    plan = FaultPlan(
        seed=1,
        requests=8,
        steps=(
            FaultStep(at=0.1, kind="equivocate", target="R0"),
            FaultStep(at=0.2, kind="corrupt_votes", target="R1"),
        ),
    )
    assert any("byzantine" in problem.lower() for problem in validate_plan(plan))


def test_validate_rejects_unsorted_steps():
    plan = FaultPlan(
        seed=1,
        requests=8,
        steps=(
            FaultStep(at=0.5, kind="crash", target="R1"),
            FaultStep(at=0.1, kind="restart", target="R1"),
        ),
    )
    assert validate_plan(plan) != []


def test_from_dict_rejects_unknown_version():
    plan = generate_plan(0)
    payload = plan.to_dict()
    payload["version"] = 99
    with pytest.raises(ValueError):
        FaultPlan.from_dict(payload)
