"""Overload exploration: the graceful-degradation acceptance tests.

The pinned criterion: a deterministic pure-overload run at >= 4x the
sustainable load *passes* the goodput oracle — commits continue, requests
are shed, and the view number never moves — while the *same* plan with
anti-storm damping disabled regresses into view changes.  That contrast is
the whole point of the layer: overload is survived by shedding, not by
electing a new primary that would inherit the same queue.
"""

import json

import pytest

from repro.explore import (
    FaultPlan,
    FaultStep,
    explore,
    generate_plan,
    run_plan,
    validate_plan,
)
from repro.explore.plan import (
    OVERLOAD_BANDWIDTH,
    OVERLOAD_CLIENTS,
    OVERLOAD_DURATION,
    OVERLOAD_RATES,
    OVERLOAD_SUSTAINABLE,
    make_overload_step,
)


def overload_plan(rate: float, seed: int = 1234) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        requests=8,
        steps=(make_overload_step(at=0.1, rate=rate),),
    )


def test_calibration_rates_are_at_least_4x_sustainable():
    """Generated episodes must be unambiguous saturation, not a gray zone."""
    assert all(rate >= 4.0 * OVERLOAD_SUSTAINABLE for rate in OVERLOAD_RATES)


@pytest.mark.parametrize("rate", OVERLOAD_RATES)
def test_overload_is_survived_by_shedding_not_view_changes(rate):
    """THE acceptance pin: >= 4x sustainable load, every oracle holds,
    load was actually shed, and no view change fired anywhere in the run."""
    verdict = run_plan(overload_plan(rate))
    assert verdict.violation is None, verdict.violation
    assert verdict.counters["requests_shed"] > 0
    assert verdict.counters["busy_replies"] > 0
    assert verdict.counters["view_changes_started"] == 0
    assert verdict.counters["view_changes_damped"] > 0
    assert verdict.counters["offered"] > 0


def test_disabling_damping_regresses_into_view_changes():
    """The counterfactual: the same plan without anti-storm damping loses
    the primary to timeout-driven view changes mid-episode, which the strict
    goodput oracle reports as a violation."""
    plan = overload_plan(OVERLOAD_RATES[0])
    verdict = run_plan(plan, overload_damping=False)
    assert verdict.violation is not None
    assert verdict.violation.oracle == "overload-goodput"
    assert verdict.counters["view_changes_started"] > 0
    assert verdict.counters["view_changes_damped"] == 0


def test_overload_run_is_deterministic():
    plan = overload_plan(OVERLOAD_RATES[1])
    a = run_plan(plan)
    b = run_plan(plan)
    assert a.to_dict() == b.to_dict()


def test_generated_overload_plans_are_pure_and_valid():
    for seed in range(8):
        plan = generate_plan(seed, requests=8, overload=True)
        assert plan.pure_overload()
        assert validate_plan(plan) == []
        (step,) = plan.steps
        assert step.kind == "overload"
        assert step.rate >= 4.0 * OVERLOAD_SUSTAINABLE
        assert step.clients == OVERLOAD_CLIENTS
        assert step.duration == OVERLOAD_DURATION
        assert step.bandwidth == OVERLOAD_BANDWIDTH


def test_overload_plan_round_trips_through_json():
    plan = generate_plan(3, requests=8, overload=True)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.to_json() == plan.to_json()


def test_mixed_plan_is_not_pure_overload():
    plan = FaultPlan(
        seed=1,
        requests=8,
        steps=(
            FaultStep(at=0.1, kind="crash", target="R1"),
            make_overload_step(at=0.3),
            FaultStep(at=0.9, kind="restart", target="R1"),
        ),
    )
    assert plan.has_overload()
    assert not plan.pure_overload()


def test_overload_step_validation_catches_bad_parameters():
    bad = FaultPlan(
        seed=1,
        requests=8,
        steps=(FaultStep(at=0.1, kind="overload", rate=0.0, clients=0, duration=0.0),),
    )
    problems = validate_plan(bad)
    assert any("rate" in p for p in problems)
    assert any("client" in p for p in problems)
    assert any("duration" in p for p in problems)


def test_explore_overload_smoke():
    """A small --overload exploration session: every plan holds, and the
    session is deterministic."""
    result = explore(budget=2, seed=0, requests=8, shrink=False, overload=True)
    assert not result.found, result.violation
    assert result.plans_run == 2
    again = explore(budget=2, seed=0, requests=8, shrink=False, overload=True)
    assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
        again.to_dict(), sort_keys=True
    )
