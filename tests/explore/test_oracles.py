"""Unit tests for each safety oracle, driven by hand-built evidence and by
small live clusters with targeted tampering."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.messages import Checkpoint
from repro.bft.testing import encode_set, recording_cluster
from repro.crypto.digest import digest
from repro.explore.oracles import (
    OracleSuite,
    OracleViolation,
    Violation,
    check_reply_segments,
)


def _suite(seed=0, byzantine=(), check_interval=10):
    cluster, recorder = recording_cluster(
        config=BFTConfig(checkpoint_interval=8, log_window=16), seed=seed
    )
    suite = OracleSuite(
        cluster, recorder, byzantine=byzantine, check_interval=check_interval
    )
    return cluster, recorder, suite


def _run_workload(cluster, n=12):
    client = cluster.client("C0")
    for i in range(n):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)


# -- clean runs hold every oracle -----------------------------------------------


def test_clean_run_passes_all_oracles_continuously():
    cluster, _recorder, suite = _suite()
    suite.install()
    _run_workload(cluster, 20)
    cluster.settle(1.0)
    suite.check_now()
    assert suite.violations == []


def test_uninstall_stops_checking():
    cluster, recorder, suite = _suite()
    suite.install()
    suite.uninstall()
    _run_workload(cluster, 4)
    # Tamper after uninstall: poison a history segment; no hook should fire.
    recorder.history_segments["R0"][0].insert(0, ("C0", b"poison"))
    cluster.settle(0.2)
    assert suite.violations == []


# -- prefix (execution-order) ---------------------------------------------------


def test_prefix_oracle_fires_on_reordered_history():
    cluster, recorder, suite = _suite()
    _run_workload(cluster, 8)
    segment = recorder.history_segments["R1"][0]
    segment[0], segment[1] = segment[1], segment[0]
    with pytest.raises(OracleViolation) as exc:
        suite.check_now()
    assert exc.value.violation.oracle == "prefix"
    assert suite.violations and suite.violations[0].oracle == "prefix"


def test_prefix_oracle_excludes_byzantine_replicas():
    cluster, recorder, suite = _suite(byzantine=("R1",))
    _run_workload(cluster, 8)
    segment = recorder.history_segments["R1"][0]
    segment[0], segment[1] = segment[1], segment[0]
    suite.check_now()
    assert suite.violations == []


# -- at-most-once -----------------------------------------------------------------


def test_check_reply_segments_flags_duplicate_reqid_within_incarnation():
    logs = {"R0": [[("C0", 1), ("C0", 2), ("C0", 2)]]}
    problem = check_reply_segments(logs)
    assert problem is not None and "R0" in problem


def test_check_reply_segments_allows_replay_across_incarnations():
    logs = {"R0": [[("C0", 1), ("C0", 2)], [("C0", 2), ("C0", 3)]]}
    assert check_reply_segments(logs) is None


def test_check_reply_segments_respects_exclude():
    logs = {"R2": [[("C0", 5), ("C0", 5)]]}
    assert check_reply_segments(logs, exclude=("R2",)) is None
    assert check_reply_segments(logs) is not None


def test_at_most_once_oracle_fires_via_suite():
    cluster, recorder, suite = _suite()
    _run_workload(cluster, 6)
    recorder.reply_logs["R3"][0].append(recorder.reply_logs["R3"][0][0])
    with pytest.raises(OracleViolation) as exc:
        suite.check_now()
    assert exc.value.violation.oracle == "at-most-once"


# -- view monotonicity ------------------------------------------------------------


def test_view_monotonicity_fires_on_view_regression():
    cluster, _recorder, suite = _suite()
    _run_workload(cluster, 4)
    suite.check_now()  # records current views
    cluster.replica("R2").view = -1
    with pytest.raises(OracleViolation) as exc:
        suite.check_now()
    assert exc.value.violation.oracle == "view-monotonicity"


def test_view_monotonicity_resets_across_incarnations():
    cluster, _recorder, suite = _suite()
    _run_workload(cluster, 10)
    suite.check_now()
    # A reboot swaps the replica object; its (fresh) view 0 is not a
    # regression even if the old incarnation had advanced.
    assert cluster.recover("R1")
    cluster.settle(2.0)
    suite.check_now()
    assert suite.violations == []


# -- commit agreement ---------------------------------------------------------------


def test_commit_agreement_fires_on_conflicting_committed_batches():
    cluster, _recorder, suite = _suite()
    _run_workload(cluster, 6)
    suite.check_now()  # seed the evidence map from honest commits
    replica = cluster.replica("R1")
    seqno, pre_prepare = next(iter(sorted(replica.committed.items())))
    forged = pre_prepare.__class__(
        view=pre_prepare.view,
        seqno=pre_prepare.seqno,
        requests=pre_prepare.requests,
        nondet=pre_prepare.nondet + b"-forged",
        primary_id=pre_prepare.primary_id,
    )
    replica.committed[seqno] = forged
    with pytest.raises(OracleViolation) as exc:
        suite.check_now()
    assert exc.value.violation.oracle == "commit-agreement"
    assert f"seqno {seqno}" in exc.value.violation.detail


def test_commit_agreement_survives_log_garbage_collection():
    """First-seen evidence outlives the replica's own log window."""
    cluster, _recorder, suite = _suite()
    suite.install()
    _run_workload(cluster, 30)  # enough to checkpoint + truncate early slots
    cluster.settle(1.0)
    suite.check_now()
    assert suite.violations == []
    assert 1 in suite._committed  # seqno 1 remembered even after GC


# -- checkpoint stability --------------------------------------------------------------


def test_checkpoint_stability_fires_on_conflicting_digest():
    cluster, _recorder, suite = _suite()
    _run_workload(cluster, 20)
    cluster.settle(1.0)
    suite.check_now()
    replica = cluster.replica("R2")
    assert replica.own_checkpoints, "workload must reach a checkpoint boundary"
    seqno = sorted(replica.own_checkpoints)[0]
    honest = replica.own_checkpoints[seqno]
    replica.own_checkpoints[seqno] = Checkpoint(
        seqno=seqno, state_digest=digest(b"tampered"), replica_id=honest.replica_id
    )
    with pytest.raises(OracleViolation) as exc:
        suite.check_now()
    assert exc.value.violation.oracle == "checkpoint-stability"


# -- plumbing ----------------------------------------------------------------------


def test_violation_dataclass_roundtrip():
    violation = Violation(oracle="prefix", detail="x", time=1.5, event_index=42)
    assert violation.to_dict() == {
        "oracle": "prefix",
        "detail": "x",
        "time": 1.5,
        "event_index": 42,
    }


def test_step_hook_checks_periodically():
    cluster, recorder, suite = _suite(check_interval=5)
    suite.install()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"x"), timeout=60)
    client.invoke(encode_set(1, b"y"), timeout=60)
    # Poison evidence, then drive the simulator: the hook must catch it
    # without an explicit check_now().
    segment = recorder.history_segments["R0"][0]
    segment[0], segment[1] = segment[1], segment[0]
    with pytest.raises(OracleViolation):
        client.invoke(encode_set(2, b"z"), timeout=60)
    assert suite.violations and suite.violations[0].oracle == "prefix"
