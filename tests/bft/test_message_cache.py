"""Freeze-after-sign semantics for the message encoding cache.

The cache is only sound if a message can never change after its first
encoding: a signer that mutated a field post-sign would keep broadcasting the
stale cached bytes while believing it sent the new value.  Rather than
invalidate on mutate (which would let that bug ship silently), mutation after
``signable_bytes()`` raises.
"""

import dataclasses

import pytest

from repro.bft.messages import (
    MESSAGE_STATS,
    Commit,
    FrozenMessageError,
    PrePrepare,
    Prepare,
    Request,
)
from repro.crypto.digest import digest


def make_request(reqid=1):
    return Request(client_id="C0", reqid=reqid, op=b"op-bytes", read_only=False)


def make_pre_prepare():
    return PrePrepare(
        view=1,
        seqno=5,
        requests=[make_request(1), make_request(2)],
        nondet=b"\x00\x01",
        primary_id="R0",
        sig=b"s" * 32,
    )


def test_mutation_after_encode_raises():
    req = make_request()
    req.signable_bytes()
    with pytest.raises(FrozenMessageError):
        req.reqid = 99
    with pytest.raises(FrozenMessageError):
        req.op = b"tampered"


def test_mutation_before_encode_allowed():
    req = make_request()
    req.reqid = 42
    assert req.reqid == 42
    req.signable_bytes()
    with pytest.raises(FrozenMessageError):
        req.reqid = 43


def test_delattr_after_encode_raises():
    prep = Prepare(view=1, seqno=5, digest=digest(b"d"), replica_id="R1", sig=b"p" * 32)
    prep.signable_bytes()
    with pytest.raises(FrozenMessageError):
        del prep.digest


def test_auth_and_sig_stay_mutable_after_freeze():
    """MAC authenticators and signatures are applied over the signable bytes,
    after encoding — they are the one legitimate post-freeze write."""
    com = Commit(view=1, seqno=5, digest=digest(b"d"), replica_id="R2", sig=b"c" * 32)
    com.signable_bytes()
    com.auth = [b"m" * 12]
    com.sig = b"resigned" * 4
    assert com.auth == [b"m" * 12]


def test_encoding_cached_and_stable():
    req = make_request()
    before = MESSAGE_STATS.get("message_encodes")
    first = req.signable_bytes()
    assert MESSAGE_STATS.get("message_encodes") == before + 1
    for _ in range(5):
        assert req.signable_bytes() is first
    assert MESSAGE_STATS.get("message_encodes") == before + 1


def test_wire_size_does_not_reencode():
    pp = make_pre_prepare()
    pp.signable_bytes()
    encodes = MESSAGE_STATS.get("message_encodes")
    size = pp.wire_size()
    assert pp.wire_size() == size
    assert MESSAGE_STATS.get("message_encodes") == encodes


def test_batch_digest_cached_and_freezes():
    pp = make_pre_prepare()
    first = pp.batch_digest()
    assert pp.batch_digest() is first
    with pytest.raises(FrozenMessageError):
        pp.nondet = b"\xff"


def test_request_digest_cached():
    req = make_request()
    assert req.digest() is req.digest()


def test_dataclasses_replace_yields_unfrozen_copy():
    """The sanctioned way to derive a modified message from a frozen one."""
    req = make_request()
    req.signable_bytes()
    clone = dataclasses.replace(req, reqid=77)
    assert clone.reqid == 77
    clone.reqid = 78  # fresh instance: not frozen until its first encoding
    assert req.reqid == 1
    assert clone.signable_bytes() != req.signable_bytes()


def test_replace_does_not_inherit_cached_encoding():
    req = make_request()
    original = req.signable_bytes()
    clone = dataclasses.replace(req, op=b"different")
    assert clone.signable_bytes() != original
