"""Integration: normal-case ordering, execution, checkpoints, batching."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_append, encode_get, encode_set

from tests.conftest import assert_converged, kv_cluster


def test_single_write_and_read():
    cluster = kv_cluster()
    client = cluster.client("C0")
    assert client.invoke(encode_set(3, b"hello")) == b"OK"
    assert client.invoke(encode_get(3)) == b"hello"


def test_all_replicas_execute(benchmarkless_settle=1.0):
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"x"))
    cluster.settle()
    assert [r.last_executed for r in cluster.replicas] == [1, 1, 1, 1]
    assert_converged(cluster)


def test_sequential_writes_converge():
    cluster = kv_cluster()
    client = cluster.client("C0")
    for i in range(30):
        assert client.invoke(encode_set(i % 8, bytes([i]))) == b"OK"
    cluster.settle()
    assert_converged(cluster)


def test_append_order_is_total():
    cluster = kv_cluster()
    clients = [cluster.client(f"C{i}") for i in range(3)]
    # Interleave async appends from three clients.
    done = []
    for round_number in range(5):
        for client in clients:
            client.invoke_async(
                encode_append(0, client.node_id.encode() + b";"), done.append
            )
        cluster.sim.run_until_condition(lambda: len(done) >= (round_number + 1) * 3, timeout=30)
    cluster.settle()
    assert_converged(cluster)
    value = cluster.service("R0").cells[0]
    assert value.count(b";") == 15


def test_read_only_optimization_used():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(1, b"ro"))
    result = client.invoke(encode_get(1), read_only=True)
    assert result == b"ro"
    cluster.settle()
    # Read-only requests never enter the ordering pipeline.
    assert all(r.last_executed == 1 for r in cluster.replicas)
    assert sum(r.counters.get("read_only_executed") for r in cluster.replicas) >= 3


def test_checkpoints_stabilize_and_gc():
    config = BFTConfig(checkpoint_interval=8, log_window=16)
    cluster = kv_cluster(config=config)
    client = cluster.client("C0")
    for i in range(20):
        client.invoke(encode_set(i % 4, bytes([i])))
    cluster.settle()
    for replica in cluster.replicas:
        assert replica.stable_seqno >= 16
        assert len(replica.log) <= config.log_window + 1
        service = cluster.service(replica.node_id)
        assert all(s >= replica.stable_seqno for s in service.checkpoint_seqnos())


def test_batching_under_concurrency():
    cluster = kv_cluster()
    clients = [cluster.client(f"C{i}") for i in range(6)]
    done = []
    for client in clients:
        client.invoke_async(encode_set(1, client.node_id.encode()), done.append)
    cluster.sim.run_until_condition(lambda: len(done) == 6, timeout=30)
    primary = cluster.replica("R0")
    # 6 concurrent requests should need fewer than 6 pre-prepares.
    assert primary.counters.get("pre_prepares_sent") < 6
    assert primary.counters.get("batched_requests") == 6


def test_duplicate_request_not_reexecuted():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_append(0, b"x"))
    # Force a retransmission of an already-executed request.
    request = None
    client._reqid -= 1  # reuse the same reqid
    result = client.invoke(encode_append(0, b"x"))
    cluster.settle()
    # The append must have been applied exactly once per reqid accepted.
    assert cluster.service("R0").cells[0] == b"x"


def test_client_rejects_second_inflight_invoke():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke_async(encode_set(0, b"a"), lambda r: None)
    with pytest.raises(Exception):
        client.invoke_async(encode_set(0, b"b"), lambda r: None)


def test_states_identical_under_packet_loss():
    from repro.net.network import NetworkConfig

    def factory_for(replica_id):
        from repro.bft.testing import KVStateMachine

        return lambda: KVStateMachine(num_slots=32)

    from repro.bft.cluster import Cluster

    cluster = Cluster(
        factory_for,
        net_config=NetworkConfig(delay=0.0005, jitter=0.0005, drop_rate=0.05),
        seed=3,
    )
    client = cluster.client("C0")
    for i in range(25):
        assert client.invoke(encode_set(i % 8, bytes([i])), timeout=120) == b"OK"
    cluster.settle(3.0)
    states = {
        rid: b"\x1f".join(cluster.service(rid).cells) for rid in cluster.hosts
    }
    # Under loss some replica may lag; at least a quorum must agree.
    from collections import Counter

    counts = Counter(states.values())
    assert counts.most_common(1)[0][1] >= 3
