"""Chaos: packet loss + proactive recovery + crashes + churn, seeded and
repeatable.  The invariant under everything ≤ f at a time: clients that get
answers get *correct* answers, and correct replicas converge.  The runs are
additionally watched live by the ``repro.explore`` oracle suite — every
safety property is checked continuously while the chaos unfolds, not just at
the end."""

import pytest

from repro.bft.client import InvocationTimeout
from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set, recording_cluster
from repro.explore.oracles import OracleSuite
from repro.net.network import NetworkConfig


def chaos_cluster(seed):
    return recording_cluster(
        config=BFTConfig(checkpoint_interval=8, log_window=16, recovery_period=3.0),
        net_config=NetworkConfig(delay=0.0005, jitter=0.0005, drop_rate=0.03),
        seed=seed,
    )


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chaos_run_converges(seed):
    cluster, recorder = chaos_cluster(seed)
    suite = OracleSuite(cluster, recorder, check_interval=20)
    suite.install()
    cluster.start_proactive_recovery()
    client = cluster.client("C0")
    model = {}  # the linearized expectation, updated on acknowledged writes

    completed = 0
    for i in range(60):
        slot = i % 8
        value = bytes([seed, i % 251])
        try:
            reply = client.invoke(encode_set(slot, value), timeout=20)
            if reply == b"OK":
                model[slot] = value
                completed += 1
        except InvocationTimeout:
            client.cancel()
        if i % 10 == 9:
            cluster.sim.run_for(0.3)

    assert completed >= 50  # loss hurts latency, not availability
    cluster.settle(8.0)
    suite.check_now()
    assert suite.violations == []

    # Reads reflect every acknowledged write.
    for slot, expected in sorted(model.items()):
        assert client.invoke(encode_get(slot), timeout=30) == expected

    # All correct (non-mid-recovery) replicas share one state.
    states = {
        rid: b"\x1f".join(cluster.service(rid).cells)
        for rid, host in cluster.hosts.items()
        if not host.replica.recovering
    }
    assert len(set(states.values())) == 1, f"seed {seed} diverged"


def test_chaos_is_deterministic():
    """Same seed, same chaos: byte-identical outcomes across runs."""

    def run(seed):
        cluster, _recorder = chaos_cluster(seed)
        cluster.start_proactive_recovery()
        client = cluster.client("C0")
        outcomes = []
        for i in range(25):
            try:
                outcomes.append(client.invoke(encode_set(i % 4, bytes([i])), timeout=20))
            except InvocationTimeout:
                client.cancel()
                outcomes.append(b"TIMEOUT")
        cluster.settle(2.0)
        return outcomes, cluster.sim.events_processed

    assert run(7) == run(7)
