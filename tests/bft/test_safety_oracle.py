"""Safety oracle: correct replicas execute the *same sequence* of requests.

We instrument the KV service to record its execution history and assert the
prefix property — for every pair of replicas, one history is a prefix of the
other — under clean runs, view changes, and random crash/recovery schedules.
This is the state-machine-replication safety invariant itself, checked
directly rather than via state convergence."""

import random
from typing import Dict, List, Tuple

import pytest

from repro.bft.cluster import Cluster
from repro.bft.config import BFTConfig
from repro.bft.testing import KVStateMachine, encode_set
from repro.net.network import NetworkConfig


class RecordingKV(KVStateMachine):
    """KV service that logs every mutation it executes, in order."""

    def __init__(self, history: List[Tuple[str, bytes]], **kwargs) -> None:
        super().__init__(**kwargs)
        self.history = history

    def execute(self, op, client_id, nondet, read_only=False):
        if not read_only:
            self.history.append((client_id, bytes(op)))
        return super().execute(op, client_id, nondet, read_only=read_only)


def recording_cluster(seed=0, drop_rate=0.0, recovery_period=0.0):
    histories: Dict[str, List[Tuple[str, bytes]]] = {}

    def factory_for(replica_id):
        histories.setdefault(replica_id, [])
        disk: dict = {}

        def make():
            # NB: a rebooted replica starts a fresh history segment; we
            # track cumulative history across reboots in the same list.
            return RecordingKV(histories[replica_id], num_slots=32, disk=disk)

        return make

    cluster = Cluster(
        factory_for,
        config=BFTConfig(
            checkpoint_interval=8, log_window=16, recovery_period=recovery_period
        ),
        net_config=NetworkConfig(delay=0.0005, jitter=0.0005, drop_rate=drop_rate),
        seed=seed,
    )
    return cluster, histories


def _is_subsequence(short: List, long: List) -> bool:
    it = iter(long)
    return all(item in it for item in short)


def assert_prefix_consistent(histories: Dict[str, List]) -> None:
    """Pairwise order consistency.

    A replica that catches up by state transfer *skips* the requests covered
    by the transferred checkpoint, so its history may have gaps — but it must
    still be an order-preserving subsequence of the longest history: no
    reordering, no divergent content, ever."""
    reference = max(histories.values(), key=len)
    for replica_id, history in histories.items():
        assert _is_subsequence(history, reference), (
            f"{replica_id}'s execution order diverged from the reference"
        )


def test_clean_run_histories_identical():
    cluster, histories = recording_cluster()
    client = cluster.client("C0")
    for i in range(25):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    cluster.settle(1.0)
    assert_prefix_consistent(histories)
    assert len({tuple(h) for h in histories.values()}) == 1


def test_histories_prefix_consistent_across_view_changes():
    cluster, histories = recording_cluster()
    client = cluster.client("C0")
    for i in range(10):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    cluster.crash("R0")
    for i in range(10, 20):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    cluster.restart("R0")
    cluster.settle(3.0)
    assert_prefix_consistent(histories)


def test_histories_under_packet_loss():
    cluster, histories = recording_cluster(seed=3, drop_rate=0.05)
    client = cluster.client("C0")
    for i in range(30):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=120)
    cluster.settle(3.0)
    assert_prefix_consistent(histories)


@pytest.mark.parametrize("seed", [11, 22])
def test_histories_under_random_crash_schedule(seed):
    """Random ≤ f crash/restart schedule interleaved with traffic: no two
    correct replicas ever execute conflicting orders."""
    cluster, histories = recording_cluster(seed=seed)
    client = cluster.client("C0")
    rng = random.Random(seed)
    crashed: List[str] = []
    for i in range(40):
        roll = rng.random()
        if roll < 0.1 and not crashed:
            victim = rng.choice(cluster.config.replica_ids)
            cluster.crash(victim)
            crashed.append(victim)
        elif roll < 0.2 and crashed:
            cluster.restart(crashed.pop())
        client.invoke(encode_set(i % 8, bytes([seed, i])), timeout=120)
    for victim in crashed:
        cluster.restart(victim)
    cluster.settle(5.0)
    assert_prefix_consistent(histories)
