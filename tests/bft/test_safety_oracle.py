"""Safety oracle: correct replicas execute the *same sequence* of requests.

The recording harness lives in ``repro.bft.testing`` (shared with
``repro.explore``): ``RecordingKV`` logs every mutation, ``recording_cluster``
wires a full cluster of them, and the prefix / order-consistency helpers
state the state-machine-replication safety invariant directly.  These tests
drive that harness under clean runs, view changes, packet loss, random
crash/recovery schedules, and proactive-recovery reboots."""

import random
from typing import List

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import (
    assert_order_consistent,
    assert_prefix_consistent,
    encode_set,
    is_subsequence,
    order_divergence,
    prefix_divergence,
    recording_cluster,
)
from repro.net.network import NetworkConfig


def _cluster(seed=0, drop_rate=0.0, recovery_period=0.0):
    return recording_cluster(
        config=BFTConfig(
            checkpoint_interval=8, log_window=16, recovery_period=recovery_period
        ),
        net_config=NetworkConfig(delay=0.0005, jitter=0.0005, drop_rate=drop_rate),
        seed=seed,
    )


def test_clean_run_histories_identical():
    cluster, recorder = _cluster()
    client = cluster.client("C0")
    for i in range(25):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    cluster.settle(1.0)
    histories = recorder.cumulative_histories()
    assert_prefix_consistent(histories)
    assert len({tuple(h) for h in histories.values()}) == 1


def test_histories_prefix_consistent_across_view_changes():
    cluster, recorder = _cluster()
    client = cluster.client("C0")
    for i in range(10):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    cluster.crash("R0")
    for i in range(10, 20):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    cluster.restart("R0")
    cluster.settle(3.0)
    # crash/restart only gates the network -- the service instances survive,
    # so each replica still has a single incarnation segment.
    assert all(len(segs) == 1 for segs in recorder.history_segments.values())
    assert_prefix_consistent(recorder.cumulative_histories())


def test_histories_under_packet_loss():
    cluster, recorder = _cluster(seed=3, drop_rate=0.05)
    client = cluster.client("C0")
    for i in range(30):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=120)
    cluster.settle(3.0)
    assert_prefix_consistent(recorder.cumulative_histories())


@pytest.mark.parametrize("seed", [11, 22])
def test_histories_under_random_crash_schedule(seed):
    """Random ≤ f crash/restart schedule interleaved with traffic: no two
    correct replicas ever execute conflicting orders."""
    cluster, recorder = _cluster(seed=seed)
    client = cluster.client("C0")
    rng = random.Random(seed)
    crashed: List[str] = []
    for i in range(40):
        roll = rng.random()
        if roll < 0.1 and not crashed:
            victim = rng.choice(cluster.config.replica_ids)
            cluster.crash(victim)
            crashed.append(victim)
        elif roll < 0.2 and crashed:
            cluster.restart(crashed.pop())
        client.invoke(encode_set(i % 8, bytes([seed, i])), timeout=120)
    for victim in crashed:
        cluster.restart(victim)
    cluster.settle(5.0)
    assert_prefix_consistent(recorder.cumulative_histories())
    assert_order_consistent(recorder)


def test_histories_across_proactive_recovery_reboots():
    """A rebooted replica rolls back to its stable checkpoint and re-executes
    the suffix: its cumulative history is NOT a subsequence any more, but
    every incarnation segment still orders common operations consistently."""
    cluster, recorder = _cluster()
    client = cluster.client("C0")
    for i in range(12):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    assert cluster.recover("R2")
    cluster.settle(2.0)
    for i in range(12, 24):
        client.invoke(encode_set(i % 8, bytes([i])), timeout=60)
    cluster.settle(2.0)
    assert len(recorder.history_segments["R2"]) == 2
    assert_order_consistent(recorder)


def test_prefix_divergence_reports_reordering():
    histories = {
        "R0": [("C0", b"a"), ("C0", b"b"), ("C0", b"c")],
        "R1": [("C0", b"b"), ("C0", b"a")],
    }
    problem = prefix_divergence(histories)
    assert problem is not None and "R1" in problem


def test_order_divergence_tolerates_rollback_but_catches_conflicts():
    a, b, c = ("C0", b"a"), ("C0", b"b"), ("C0", b"c")
    # Reboot re-execution: [a, b] then a fresh segment [b, c] is consistent.
    assert order_divergence({"R0": [[a, b], [b, c]], "R1": [[a, b, c]]}) is None
    # Genuine reorder across replicas is not.
    assert order_divergence({"R0": [[a, b]], "R1": [[b, a]]}) is not None
    # Excluded (Byzantine) replicas do not count.
    assert order_divergence({"R0": [[a, b]], "R1": [[b, a]]}, exclude=("R1",)) is None


def test_is_subsequence():
    assert is_subsequence([1, 3], [1, 2, 3])
    assert not is_subsequence([3, 1], [1, 2, 3])
