"""BFT configuration invariants."""

import pytest

from repro.bft.config import BFTConfig
from repro.util.errors import ConfigurationError


def test_default_is_f1_n4():
    config = BFTConfig()
    assert config.n == 4
    assert config.f == 1
    assert config.quorum == 3
    assert config.weak_quorum == 2


def test_n_must_cover_f():
    with pytest.raises(ConfigurationError):
        BFTConfig(replica_ids=["R0", "R1", "R2"], f=1)


def test_seven_replicas_tolerate_two_faults():
    config = BFTConfig(replica_ids=[f"R{i}" for i in range(7)], f=2)
    assert config.quorum == 5


def test_primary_rotates_round_robin():
    config = BFTConfig()
    assert [config.primary(v) for v in range(5)] == ["R0", "R1", "R2", "R3", "R0"]


def test_duplicate_ids_rejected():
    with pytest.raises(ConfigurationError):
        BFTConfig(replica_ids=["R0", "R0", "R1", "R2"])


def test_log_window_must_cover_two_checkpoints():
    with pytest.raises(ConfigurationError):
        BFTConfig(checkpoint_interval=16, log_window=16)


def test_checkpoint_interval_positive():
    with pytest.raises(ConfigurationError):
        BFTConfig(checkpoint_interval=0)


def test_replica_index():
    config = BFTConfig()
    assert config.replica_index("R2") == 2
