"""ReplicaHost mechanics: watchdog staggering, skip conditions, accounting."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_set, kv_cluster


def warmed_cluster(**config_overrides):
    defaults = dict(checkpoint_interval=8, log_window=16)
    defaults.update(config_overrides)
    cluster = kv_cluster(config=BFTConfig(**defaults))
    client = cluster.client("C0")
    for i in range(12):
        client.invoke(encode_set(i % 4, bytes([i])), timeout=60)
    cluster.settle(1.0)
    return cluster


def test_recovery_skipped_while_recovering():
    cluster = warmed_cluster()
    host = cluster.hosts["R1"]
    assert host.recover_now()
    # Second call while the first is mid-flight must refuse.
    assert not host.recover_now()
    cluster.settle(3.0)
    assert host.replica.counters.get("recoveries_started") == 1


def test_staggered_offsets_cover_the_period():
    cluster = warmed_cluster(recovery_period=4.0)
    cluster.start_proactive_recovery()
    cluster.sim.run_for(4.5)
    starts = {
        rid: host.recovery_log[0][0]
        for rid, host in cluster.hosts.items()
        if host.recovery_log
    }
    assert len(starts) == 4
    # First firings land at period * (i+1)/n: 1, 2, 3, 4 seconds (plus the
    # warmup offset), pairwise ~1 s apart.
    ordered = sorted(starts.values())
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    assert all(0.5 < gap < 1.5 for gap in gaps), gaps


def test_recovery_log_and_durations_align():
    cluster = warmed_cluster()
    host = cluster.hosts["R2"]
    host.recover_now()
    cluster.settle(3.0)
    assert len(host.recovery_log) == 1
    (start, end), = host.recovery_log
    assert end > start
    assert host.recovery_durations() == [end - start]


def test_counters_survive_reboot():
    cluster = warmed_cluster()
    host = cluster.hosts["R3"]
    executed_before = host.replica.counters.get("requests_executed")
    assert executed_before > 0
    host.recover_now()
    cluster.settle(3.0)
    # Counter totals were merged into the new replica instance.
    assert host.replica.counters.get("requests_executed") >= executed_before


def test_service_factory_called_per_reboot():
    calls = []

    from repro.bft.cluster import Cluster
    from repro.bft.testing import KVStateMachine

    disks = {}

    def factory_for(replica_id):
        disks.setdefault(replica_id, {})

        def make():
            calls.append(replica_id)
            return KVStateMachine(num_slots=16, disk=disks[replica_id])

        return make

    cluster = Cluster(factory_for, config=BFTConfig(checkpoint_interval=8, log_window=16))
    client = cluster.client("C0")
    for i in range(10):
        client.invoke(encode_set(i % 4, bytes([i])), timeout=60)
    assert calls.count("R0") == 1
    cluster.hosts["R0"].recover_now()
    cluster.settle(3.0)
    assert calls.count("R0") == 2
