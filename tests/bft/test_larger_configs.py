"""The protocol generalizes beyond n=4: seven replicas tolerating f=2."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set, kv_cluster

SEVEN = [f"R{i}" for i in range(7)]


def seven_cluster(**overrides):
    defaults = dict(replica_ids=list(SEVEN), f=2, checkpoint_interval=8, log_window=16)
    defaults.update(overrides)
    return kv_cluster(config=BFTConfig(**defaults))


def test_normal_case_with_seven_replicas():
    cluster = seven_cluster()
    client = cluster.client("C0")
    for i in range(20):
        assert client.invoke(encode_set(i % 8, bytes([i])), timeout=60) == b"OK"
    cluster.settle()
    assert len({r.last_executed for r in cluster.replicas}) == 1


def test_two_crashes_masked():
    cluster = seven_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"before"))
    cluster.crash("R3")
    cluster.crash("R5")
    for i in range(10):
        assert client.invoke(encode_set(1 + (i % 4), bytes([i])), timeout=60) == b"OK"
    assert client.invoke(encode_get(0), timeout=60) == b"before"


def test_three_crashes_stall():
    cluster = seven_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"x"))
    for victim in ("R2", "R4", "R6"):
        cluster.crash(victim)
    from repro.bft.client import InvocationTimeout

    with pytest.raises(InvocationTimeout):
        client.invoke(encode_set(1, b"y"), timeout=3)


def test_primary_crash_with_f2():
    cluster = seven_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"x"))
    cluster.crash("R0")
    cluster.crash("R6")  # a backup too: still only f = 2 faults
    assert client.invoke(encode_set(1, b"after"), timeout=60) == b"OK"
    live_views = {r.view for r in cluster.replicas if r.node_id not in ("R0", "R6")}
    assert live_views == {1}


def test_read_only_needs_2f_plus_1_matching():
    cluster = seven_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(3, b"ro"))
    assert client.invoke(encode_get(3), read_only=True, timeout=60) == b"ro"


def test_state_transfer_with_seven():
    cluster = seven_cluster()
    client = cluster.client("C0")
    cluster.crash("R6")
    for i in range(40):
        client.invoke(encode_set(i % 8, bytes([i % 251])), timeout=60)
    cluster.restart("R6")
    cluster.settle(5.0)
    assert cluster.replica("R6").last_executed >= 40
