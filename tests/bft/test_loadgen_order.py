"""Open-loop swarm determinism: the per-client request streams must depend
only on the client *identities*, never on the order the client list was
built in — cross-placement experiments (the shard-scaling ladder builds its
swarms shard-by-shard) compare offered loads, so the loads must be identical.
"""

from repro.bft.overload import OpenLoopLoadGenerator
from repro.net.simulator import Simulator


class StubClient:
    """Just enough client surface for the generator: identity, one in-flight
    invocation, and a log of every issued op."""

    def __init__(self, node_id, issued):
        self.node_id = node_id
        self._current = None
        self._issued = issued

    def invoke_async(self, op, callback, read_only=False):
        self._current = op
        self._issued.append((self.node_id, op))

    def cancel(self):
        self._current = None


def _run_swarm(order):
    """Drive a swarm built with clients in ``order``; returns the global
    issue log [(client_id, op), ...] in simulator order."""
    sim = Simulator(seed=7)
    issued = []
    clients = [StubClient(node_id, issued) for node_id in order]
    swarm = OpenLoopLoadGenerator(
        sim, clients, rate=40.0, op_factory=lambda cid, seq: f"{cid}:{seq}".encode()
    )
    swarm.start()
    sim.run_for(0.5)
    swarm.stop()
    return issued


def test_streams_are_independent_of_client_list_order():
    ids = ["L0", "L1", "L2", "L3"]
    baseline = _run_swarm(ids)
    assert baseline  # the swarm actually offered load
    # Any permutation of the client list offers the byte-identical schedule:
    # same ops, same clients, same global interleaving.
    assert _run_swarm(list(reversed(ids))) == baseline
    assert _run_swarm(["L2", "L0", "L3", "L1"]) == baseline


def test_phase_offsets_follow_sorted_identity():
    # "A" sorts first, so it gets phase offset 0 and ticks first even when it
    # is listed last.
    issued = _run_swarm(["B", "A"])
    assert issued[0][0] == "A"
    assert issued[1][0] == "B"


def test_per_client_sequence_is_contiguous():
    issued = _run_swarm(["L1", "L0"])
    per_client = {}
    for node_id, op in issued:
        per_client.setdefault(node_id, []).append(op)
    for node_id, ops in per_client.items():
        assert ops == [f"{node_id}:{i}".encode() for i in range(len(ops))]
