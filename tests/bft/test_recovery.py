"""Proactive recovery: reboots, key refresh, corrupt-state repair (E5/E10)."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set

from tests.conftest import assert_converged, kv_cluster


def run_ops(cluster, client, count, width=8):
    for i in range(count):
        client.invoke(encode_set(i % width, bytes([i % 251])), timeout=60)


def test_manual_recovery_completes():
    disks = {}
    cluster = kv_cluster(disks=disks)
    client = cluster.client("C0")
    run_ops(cluster, client, 20)
    host = cluster.hosts["R2"]
    assert host.recover_now()
    cluster.settle(3.0)
    replica = host.replica
    assert not replica.recovering
    assert replica.counters.get("recoveries_completed") == 1
    assert len(host.recovery_log) == 1
    assert_converged(cluster)


def test_recovery_skipped_before_any_state():
    cluster = kv_cluster()
    assert not cluster.hosts["R0"].recover_now()


def test_recovery_replaces_service_instance():
    disks = {}
    cluster = kv_cluster(disks=disks)
    client = cluster.client("C0")
    run_ops(cluster, client, 20)
    old_service = cluster.hosts["R1"].service
    cluster.hosts["R1"].recover_now()
    cluster.settle(3.0)
    assert cluster.hosts["R1"].service is not old_service


def test_recovery_refreshes_session_keys():
    disks = {}
    cluster = kv_cluster(disks=disks)
    client = cluster.client("C0")
    run_ops(cluster, client, 20)
    epoch_before = cluster.keys.epoch_of("R1")
    cluster.hosts["R1"].recover_now()
    cluster.settle(3.0)
    assert cluster.keys.epoch_of("R1") == epoch_before + 1


def test_recovery_repairs_corrupt_disk_state():
    """Concrete-state corruption (bit rot, bugs) is healed from the abstract
    state of the correct replicas — the paper's availability argument."""
    disks = {}
    cluster = kv_cluster(disks=disks)
    client = cluster.client("C0")
    run_ops(cluster, client, 20)
    cluster.settle(1.0)
    # Corrupt R2's persistent state behind the service's back.
    disks["R2"][3] = b"CORRUPTED"
    host = cluster.hosts["R2"]
    host.recover_now()
    cluster.settle(3.0)
    assert host.replica.counters.get("objects_fetched") >= 1
    run_ops(cluster, client, 4)
    cluster.settle(1.0)
    assert_converged(cluster)


def test_corruption_of_untouched_object_detected():
    disks = {}
    cluster = kv_cluster(disks=disks, num_slots=32)
    client = cluster.client("C0")
    run_ops(cluster, client, 20, width=4)  # objects 4..31 never written
    cluster.settle(1.0)
    disks["R2"][20] = b"ROT"  # corrupt an object that was never written
    host = cluster.hosts["R2"]
    host.recover_now()
    cluster.settle(3.0)
    assert host.replica.counters.get("objects_fetched") >= 1
    assert cluster.service("R2").cells[20] == b""


def test_staggered_schedule_under_load():
    disks = {}
    config = BFTConfig(recovery_period=2.0)
    cluster = kv_cluster(config=config, disks=disks)
    cluster.start_proactive_recovery()
    client = cluster.client("C0")
    for i in range(150):
        client.invoke(encode_set(i % 8, bytes([i % 251])), timeout=120)
        cluster.sim.run_for(0.02)
    cluster.settle(4.0)
    completed = {
        rid: host.replica.counters.get("recoveries_completed")
        for rid, host in cluster.hosts.items()
    }
    assert all(count >= 1 for count in completed.values()), completed
    # No two recoveries overlap (staggering keeps < 1/3 recovering).
    intervals = sorted(
        interval for host in cluster.hosts.values() for interval in host.recovery_log
    )
    for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
        assert end_a <= start_b + 1e-9
    # Service stayed correct throughout.
    assert client.invoke(encode_get(0), timeout=60) is not None


def test_recovery_durations_recorded():
    disks = {}
    cluster = kv_cluster(disks=disks)
    client = cluster.client("C0")
    run_ops(cluster, client, 20)
    host = cluster.hosts["R3"]
    host.recover_now()
    cluster.settle(3.0)
    durations = host.recovery_durations()
    assert len(durations) == 1
    assert durations[0] >= host.reboot_time
