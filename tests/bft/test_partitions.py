"""Network partitions: safety always, liveness once healed."""

import pytest

from repro.bft.client import InvocationTimeout
from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set, kv_cluster

from tests.conftest import kv_cluster as _kv  # noqa: F401  (back-compat import)


def test_minority_partition_cannot_commit():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"pre"))
    # Primary isolated with one backup: 2 < quorum of 3.
    cluster.network.partition(["R0", "R1"], ["R2", "R3"])
    with pytest.raises(InvocationTimeout):
        client.invoke(encode_set(1, b"split"), timeout=2)
    client.cancel()
    # No replica executed the request during the partition.
    cluster.settle(0.5)
    for replica in cluster.replicas:
        assert replica.last_executed == 1


def test_heals_and_resumes():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"pre"))
    cluster.network.partition(["R0"], ["R1", "R2", "R3"])
    # Majority side (3 = quorum) elects a new primary and keeps going.
    assert client.invoke(encode_set(1, b"majority side"), timeout=30) == b"OK"
    cluster.network.heal_partition()
    cluster.settle(3.0)
    assert client.invoke(encode_get(1), timeout=30) == b"majority side"
    # The isolated ex-primary rejoins the later view.
    assert cluster.replica("R0").view == cluster.replica("R1").view


def test_flapping_partition_preserves_safety():
    cluster = kv_cluster(seed=11)
    client = cluster.client("C0")
    done = 0
    for round_number in range(4):
        cluster.network.partition(["R%d" % (round_number % 4)],
                                  [r for r in ("R0", "R1", "R2", "R3")
                                   if r != "R%d" % (round_number % 4)])
        try:
            client.invoke(encode_set(round_number, bytes([round_number])), timeout=20)
            done += 1
        except InvocationTimeout:
            client.cancel()
        cluster.network.heal_partition()
        cluster.settle(1.0)
    cluster.settle(3.0)
    # All replicas converge to a single history.
    from tests.conftest import Cluster  # noqa: F401

    states = {
        rid: b"\x1f".join(cluster.service(rid).cells) for rid in cluster.hosts
    }
    assert len(set(states.values())) == 1
    assert done >= 3  # a 3-replica majority existed in every round
