"""Hierarchical state transfer: lagging replicas fetch only what changed (E9)."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_set

from tests.conftest import assert_converged, kv_cluster


def run_ops(cluster, client, count, width=8, tag=0):
    for i in range(count):
        client.invoke(encode_set(i % width, bytes([tag, i % 251])), timeout=60)


def test_lagging_replica_catches_up_via_transfer():
    config = BFTConfig(checkpoint_interval=8, log_window=16)
    cluster = kv_cluster(config=config)
    client = cluster.client("C0")
    run_ops(cluster, client, 5)
    cluster.crash("R3")
    run_ops(cluster, client, 40)  # far beyond R3's log window
    cluster.restart("R3")
    cluster.settle(5.0)
    r3 = cluster.replica("R3")
    assert r3.counters.get("state_transfers_completed") >= 1
    assert r3.last_executed >= 40
    assert_converged(cluster)


def test_transfer_fetches_only_modified_objects():
    config = BFTConfig(checkpoint_interval=8, log_window=16)
    cluster = kv_cluster(config=config, num_slots=32)
    client = cluster.client("C0")
    run_ops(cluster, client, 10, width=32)
    cluster.crash("R3")
    # Touch only 2 of 32 objects while R3 is away.
    for i in range(40):
        client.invoke(encode_set(i % 2, bytes([7, i % 251])), timeout=60)
    cluster.restart("R3")
    cluster.settle(5.0)
    r3 = cluster.replica("R3")
    fetched = r3.counters.get("objects_fetched")
    assert 1 <= fetched <= 8, f"expected a handful of objects, fetched {fetched}"
    assert_converged(cluster)


def test_transfer_verifies_object_digests():
    """A fetched object whose bytes do not match the certified leaf digest is
    rejected (donor cannot poison the fetcher)."""
    config = BFTConfig(checkpoint_interval=8, log_window=16)
    cluster = kv_cluster(config=config)
    client = cluster.client("C0")
    run_ops(cluster, client, 5)
    cluster.crash("R3")
    run_ops(cluster, client, 30)

    from repro.bft.messages import ObjectReply

    def corrupt_object_replies(src, dst, message):
        if isinstance(message, ObjectReply) and dst == "R3":
            return ObjectReply(
                replica_id=message.replica_id,
                index=message.index,
                seqno=message.seqno,
                data=message.data + b"POISON",
            )
        return message

    remove = cluster.network.add_interceptor(corrupt_object_replies)
    cluster.restart("R3")
    cluster.settle(1.0)
    r3 = cluster.replica("R3")
    assert r3.counters.get("object_reply_bad_digest") >= 1
    assert r3.counters.get("state_transfers_completed") == 0
    remove()
    cluster.settle(5.0)
    assert cluster.replica("R3").counters.get("state_transfers_completed") >= 1
    assert_converged(cluster)


def test_transfer_survives_donor_churn():
    """Donors GC the session checkpoint mid-fetch; the fetcher re-anchors."""
    config = BFTConfig(checkpoint_interval=4, log_window=8)
    cluster = kv_cluster(config=config)
    client = cluster.client("C0")
    run_ops(cluster, client, 6)
    cluster.crash("R3")
    run_ops(cluster, client, 30)
    cluster.restart("R3")
    # Keep writing while R3 transfers, forcing checkpoint churn.
    run_ops(cluster, client, 30, tag=1)
    cluster.settle(5.0)
    assert cluster.replica("R3").last_executed >= 60
    assert_converged(cluster)
