"""Fault-containment supervisor: reactive repair, crash-loop classification,
skip-past-poison state transfer, N-version failover, and the scrubber.

All scenarios run the recording KV cluster with the watchdog OFF
(``recovery_period=0``): every repair observed here was initiated by the
supervisor reacting to a crash, not by proactive rejuvenation.
"""

import pytest

from repro.bft.cluster import Cluster
from repro.bft.config import BFTConfig
from repro.bft.messages import CheckpointCert
from repro.bft.repair import RepairPolicy
from repro.bft.testing import (
    HistoryRecorder,
    RecordingKV,
    assert_order_consistent,
    encode_set,
    kv_cluster,
    recording_cluster,
)
from repro.faults import POISON
from repro.util.errors import FaultInjected


def poisoned_cluster(policy=None, **config_overrides):
    defaults = dict(checkpoint_interval=8, log_window=32)
    defaults.update(config_overrides)
    poisoned = set()
    policy = policy or RepairPolicy(
        backoff_initial=0.02, backoff_max=0.2, deterministic_after=2, failover_after=8
    )
    cluster, recorder = recording_cluster(
        config=BFTConfig(**defaults), repair=policy, poisoned=poisoned
    )
    return cluster, recorder, poisoned


def warm_up(cluster, requests=8):
    client = cluster.client("C0")
    for i in range(requests):
        client.invoke(encode_set(i % 8, bytes([i])))
    return client


def test_reactive_repair_without_watchdog():
    """A transient implementation crash is repaired by the supervisor alone:
    one crash, one reactive recovery, episode closed — and the poisoned
    request itself never failed at the client (the quorum masked it)."""
    cluster, recorder, poisoned = poisoned_cluster()
    warm_up(cluster)
    poisoned.add("R2")
    assert cluster.client("P0").invoke(encode_set(9, POISON)) == b"OK"
    poisoned.discard("R2")  # transient: the rebuilt instance is clean
    cluster.settle(2.0)
    host = cluster.host("R2")
    supervisor = host.supervisor
    assert len(supervisor.crashes) == 1
    assert supervisor.counters.get("supervisor_repairs_started") == 1
    assert len(host.recovery_log) == 1  # reactive — recovery_period is 0
    assert len(supervisor.mttr_log) == 1  # order-consistent again
    assert not cluster.network.is_down("R2")
    assert not supervisor.status()["episode_open"]
    assert_order_consistent(recorder)


def test_deterministic_bug_escalates_to_skip_past_poison():
    """A deterministic input-triggered bug crash-loops (suffix re-execution
    re-feeds the poison); the supervisor classifies it and the repair adopts
    the quorum's abstract state *past* the poisoning operation instead of
    re-executing it."""
    cluster, recorder, poisoned = poisoned_cluster()
    client = warm_up(cluster)
    poisoned.add("R2")
    assert cluster.client("P0").invoke(encode_set(9, POISON)) == b"OK"
    # Quiet period: the newest certificate predates the poison, so every
    # rebuild re-executes it and dies again until the skip engages.
    cluster.settle(1.0)
    supervisor = cluster.host("R2").supervisor
    assert len(supervisor.crashes) >= 2
    assert supervisor.counters.get("supervisor_deterministic_crashes") >= 1
    assert supervisor.status()["skip_min_seqno"] == 9
    # Resume traffic: the skip needs a certificate at or past the poison.
    for i in range(16):
        client.invoke(encode_set(i % 8, bytes([i, 7])))
    cluster.settle(3.0)
    assert supervisor.counters.get("supervisor_skip_transfers") >= 1
    assert len(supervisor.mttr_log) == 1
    assert not cluster.network.is_down("R2")
    # R2 holds the poison *value* (adopted via state transfer) but never
    # executed the poison operation in any incarnation.
    assert cluster.service("R2").cells[9] == POISON
    assert all(
        POISON not in op
        for segment in recorder.history_segments["R2"]
        for _client_id, op in segment
    )
    assert_order_consistent(recorder)


def test_n_version_failover_when_repairs_keep_failing():
    """When rebuilds keep dying (classification disabled here, so every
    repair re-executes the poison), the ladder's last rung swaps in the next
    implementation of the N-version factory list, which executes the poison
    without crashing."""
    policy = RepairPolicy(
        backoff_initial=0.02, backoff_max=0.1, deterministic_after=10, failover_after=2
    )
    cluster, recorder, poisoned = poisoned_cluster(policy=policy)
    warm_up(cluster)
    poisoned.add("R2")  # never healed: the primary implementation stays buggy
    assert cluster.client("P0").invoke(encode_set(9, POISON)) == b"OK"
    cluster.settle(3.0)
    host = cluster.host("R2")
    supervisor = host.supervisor
    assert len(supervisor.crashes) >= 3  # looped past failover_after
    assert host.factory_index == 1  # running the clean implementation now
    assert supervisor.counters.get("supervisor_failovers") == 1
    assert len(supervisor.mttr_log) == 1
    assert not cluster.network.is_down("R2")
    # The clean implementation re-executed the poison operation fine.
    assert cluster.service("R2").cells[9] == POISON
    assert_order_consistent(recorder)


def test_scrubber_repairs_silent_corruption_without_reboot():
    """In-place value corruption (no ``modify`` upcall) keeps checkpoint
    digests stale-correct, so only the scrubber can see it — and it repairs
    the leaf through a targeted partial transfer, never rebooting."""
    policy = RepairPolicy(scrub_interval=0.05, scrub_batch=32)
    cluster, recorder, _poisoned = poisoned_cluster(policy=policy)
    warm_up(cluster)
    cluster.settle(0.5)  # checkpoint at 8 stabilizes; modified-flags clear
    service = cluster.service("R1")
    good = service.cells[3]
    assert good == bytes([3])
    service.cells[3] = good + b"\xff<bitrot>"
    recoveries_before = cluster.replica("R1").counters.get("recoveries_started")
    cluster.settle(1.0)
    replica = cluster.replica("R1")
    assert service.cells[3] == good
    assert cluster.host("R1").supervisor.counters.get("scrub_corruption_detected") >= 1
    assert replica.counters.get("scrub_repairs") >= 1
    assert replica.counters.get("recoveries_started") == recoveries_before
    assert_order_consistent(recorder)


def test_crash_during_state_install_is_re_repaired():
    """An implementation that dies *inside* ``put_objs`` while recovery is
    installing fetched state crashes mid-repair; the supervisor observes that
    crash too and repairs again (here: the next rebuild installs fine)."""
    recorder = HistoryRecorder()
    disks = {}
    fail_installs = {"R2": 1}

    class InstallCrashKV(RecordingKV):
        def __init__(self, rid, **kwargs):
            super().__init__(recorder, rid, **kwargs)
            self._rid = rid

        def install_fetched(self, objects, seqno):
            if fail_installs.get(self._rid, 0) > 0:
                fail_installs[self._rid] -= 1
                raise FaultInjected("implementation bug: put_objs rejects checkpoint")
            return super().install_fetched(objects, seqno)

    def factory_for(replica_id):
        disks.setdefault(replica_id, {})

        def make():
            return InstallCrashKV(replica_id, num_slots=32, disk=disks[replica_id])

        return make

    cluster = Cluster(
        factory_for,
        config=BFTConfig(checkpoint_interval=8, log_window=32),
        repair=RepairPolicy(backoff_initial=0.02, backoff_max=0.2),
    )
    client = warm_up(cluster)
    cluster.replica("R2").crash_self("aging: heap exhausted")
    for i in range(4):  # keep ordering alive so the episode can close
        client.invoke(encode_set(i % 8, bytes([i, 9])))
    cluster.settle(3.0)
    supervisor = cluster.host("R2").supervisor
    reasons = [record.reason for record in supervisor.crashes]
    assert "implementation bug: put_objs rejects checkpoint" in reasons
    assert len(supervisor.crashes) >= 2  # the install crash was observed
    assert supervisor.counters.get("supervisor_repairs_started") >= 2
    assert not cluster.network.is_down("R2")
    assert len(supervisor.mttr_log) == 1
    assert_order_consistent(recorder)


def test_repair_path_clears_stale_retry_counts():
    """Regression: the corrupt-state repair branch of
    ``_verify_current_and_finish`` must start with a clean retry slate —
    counts inherited from a previous session would abort the repair before
    its first fetch."""
    cluster = kv_cluster(config=BFTConfig(checkpoint_interval=8, log_window=32))
    client = cluster.client("C0")
    for i in range(8):
        client.invoke(encode_set(i % 8, bytes([i])))
    cluster.settle(0.5)
    replica = cluster.replica("R1")
    transfer = replica.transfer
    cert = CheckpointCert(seqno=replica.last_executed, state_digest=b"\x00" * 32)
    replica.recovering = True
    transfer._retries = {("obj", 1): transfer._max_retries + 1}
    transfer._verify_current_and_finish(cert)
    assert transfer.active  # the repair session started...
    assert transfer.session is cert
    assert transfer._retries == {}  # ...with no inherited retry counts
