"""Overload robustness: the bounded admission queue, deterministic shedding,
Busy replies, batching fairness, request relay, and anti-storm damping."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.messages import Busy, Request
from repro.bft.overload import AdmissionQueue, OpenLoopLoadGenerator
from repro.bft.testing import encode_get, encode_set, kv_cluster


def req(client_id, reqid, op=b"op"):
    return Request(client_id=client_id, reqid=reqid, op=op)


# -- AdmissionQueue policy unit tests ------------------------------------------


def test_fifo_order_and_mapping_surface():
    q = AdmissionQueue(capacity=8, per_client=8, ttl=10.0)
    for i in range(3):
        outcome = q.admit(req("A", i + 1), now=float(i))
        assert outcome.admitted and not outcome.shed
    assert len(q) == 3
    assert bool(q)
    assert ("A", 1) in q
    assert list(q) == [("A", 1), ("A", 2), ("A", 3)]
    assert q.oldest_key() == ("A", 1)
    assert q.pop(("A", 1)).reqid == 1
    assert q.pop(("A", 9), None) is None
    with pytest.raises(KeyError):
        q.pop(("A", 9))
    q.clear()
    assert not q and len(q) == 0


def test_retransmission_refreshes_but_keeps_position():
    q = AdmissionQueue(capacity=8, per_client=8, ttl=1.0)
    q.admit(req("A", 1), now=0.0)
    q.admit(req("B", 1), now=0.1)
    refreshed = q.admit(req("A", 1), now=0.5)
    assert refreshed.refreshed and not refreshed.admitted
    # Position unchanged: A's request still precedes B's.
    assert list(q) == [("A", 1), ("B", 1)]
    # But liveness was refreshed: at t=1.05 only B (last seen 0.1) expires.
    expired = q.expire_stale(now=1.2)
    assert expired == [("B", 1)]
    assert list(q) == [("A", 1)]


def test_per_client_cap_sheds_the_flooder_only():
    q = AdmissionQueue(capacity=16, per_client=2, ttl=10.0)
    assert q.admit(req("A", 1), 0.0).admitted
    assert q.admit(req("A", 2), 0.0).admitted
    shed = q.admit(req("A", 3), 0.0)
    assert shed.shed and shed.shed_reason == "client_cap"
    # Another client is unaffected.
    assert q.admit(req("B", 1), 0.0).admitted
    assert q.queued_for("A") == 2 and q.queued_for("B") == 1


def test_capacity_evicts_heaviest_clients_newest_request():
    q = AdmissionQueue(capacity=4, per_client=3, ttl=10.0)
    q.admit(req("A", 1), 0.0)
    q.admit(req("A", 2), 0.0)
    q.admit(req("A", 3), 0.0)
    q.admit(req("B", 1), 0.0)
    # Full.  C's first request displaces A's *newest* — A is heaviest, and
    # light clients keep their FIFO place.
    outcome = q.admit(req("C", 1), 0.0)
    assert outcome.admitted
    assert outcome.evicted == ("A", 3)
    assert list(q) == [("A", 1), ("A", 2), ("B", 1), ("C", 1)]


def test_capacity_sheds_incoming_that_would_be_heaviest():
    q = AdmissionQueue(capacity=4, per_client=4, ttl=10.0)
    q.admit(req("A", 1), 0.0)
    q.admit(req("A", 2), 0.0)
    q.admit(req("B", 1), 0.0)
    q.admit(req("B", 2), 0.0)
    # A third request from A would tie/make A the heaviest: shed it rather
    # than churn B's slot.
    outcome = q.admit(req("A", 3), 0.0)
    assert outcome.shed and outcome.shed_reason == "capacity"
    assert len(q) == 4


def test_ttl_expiry_is_a_bounded_front_sweep():
    q = AdmissionQueue(capacity=64, per_client=64, ttl=1.0)
    for i in range(10):
        q.admit(req("A", i + 1), now=0.0)
    q.admit(req("B", 1), now=5.0)  # admission itself sweeps the stale front
    assert ("A", 1) not in q
    assert q.queued_for("A") < 10
    # The sweep is bounded per call; repeated sweeps drain the rest.
    while q.queued_for("A"):
        q.expire_stale(now=5.0)
    assert list(q) == [("B", 1)]


def test_purge_superseded_drops_older_reqids_only():
    q = AdmissionQueue(capacity=8, per_client=8, ttl=10.0)
    q.admit(req("A", 1), 0.0)
    q.admit(req("A", 3), 0.0)
    q.admit(req("A", 5), 0.0)
    q.admit(req("B", 2), 0.0)
    stale = q.purge_superseded("A", 3)
    assert sorted(stale) == [("A", 1), ("A", 3)]
    assert list(q) == [("A", 5), ("B", 2)]
    assert q.purge_superseded("C", 9) == []


def test_abandoned_requests_excludes_fresh_entries():
    q = AdmissionQueue(capacity=8, per_client=8, ttl=10.0)
    q.admit(req("A", 1), now=0.0)
    q.admit(req("B", 1), now=0.0)
    q.admit(req("B", 1), now=0.9)  # B's client is still retransmitting
    abandoned = q.abandoned_requests(now=1.0, age=0.5, limit=8)
    assert [(r.client_id, r.reqid) for r in abandoned] == [("A", 1)]
    assert q.abandoned_requests(now=1.0, age=0.5, limit=0) == []


def test_queue_validates_construction():
    with pytest.raises(ValueError):
        AdmissionQueue(capacity=0, per_client=1, ttl=1.0)
    with pytest.raises(ValueError):
        AdmissionQueue(capacity=1, per_client=0, ttl=1.0)


# -- replica-level shedding ----------------------------------------------------


def flood(cluster, replica_id, client_id, count, start_reqid=1):
    """Deliver ``count`` distinct authenticated requests straight to one
    replica, bypassing client-side one-outstanding discipline (a Byzantine
    client does not respect it)."""
    cluster.client(client_id)  # registers the client's MAC keys
    replica = cluster.replica(replica_id)
    for i in range(count):
        request = Request(
            client_id=client_id, reqid=start_reqid + i, op=encode_set(0, b"x")
        )
        request.auth = cluster.keys.make_authenticator(
            client_id, cluster.config.replica_ids, request.signable_bytes()
        )
        replica.on_message(request, client_id)


def test_flooding_client_cannot_grow_backup_memory():
    """A Byzantine client spraying distinct reqids is bounded by the
    per-client cap on every replica, with the evictions counted."""
    config = BFTConfig(admission_capacity=16, admission_per_client=4)
    cluster = kv_cluster(config=config)
    flood(cluster, "R1", "F0", count=100)
    backup = cluster.replica("R1")
    assert len(backup.pending) <= 4
    assert backup.counters.get("requests_shed") == 96
    assert backup.counters.get("requests_shed_client_cap") == 96
    assert backup.counters.get("pending_evicted") == 96


def test_total_capacity_bounds_many_flooding_clients():
    config = BFTConfig(admission_capacity=8, admission_per_client=8)
    cluster = kv_cluster(config=config)
    for i in range(6):
        flood(cluster, "R1", f"F{i}", count=4)
    backup = cluster.replica("R1")
    assert len(backup.pending) <= 8
    # 24 offered, 8 slots: every refusal (shed or evicted-for-a-newcomer)
    # shows up in the memory-bound counter.
    assert backup.counters.get("pending_evicted") == 16
    assert backup.counters.get("requests_shed") >= 1


def test_shedding_never_touches_protocol_messages():
    """Saturating admission on a backup must not impede ordering: protocol
    messages bypass the admission queue entirely."""
    config = BFTConfig(admission_capacity=8, admission_per_client=8)
    cluster = kv_cluster(config=config)
    for i in range(4):
        flood(cluster, "R1", f"F{i}", count=2)
    assert len(cluster.replica("R1").pending) == 8  # admission full
    client = cluster.client("C0")
    assert client.invoke(encode_set(1, b"through")) == b"OK"
    assert client.invoke(encode_get(1)) == b"through"


def test_primary_sends_busy_on_shed():
    """A shed at the primary is answered with an authenticated Busy whose
    hint scales with queue fill — proof of life plus a retry suggestion."""
    config = BFTConfig(admission_capacity=16, admission_per_client=1)
    cluster = kv_cluster(config=config)
    primary = cluster.replica("R0")
    heard = []

    def watch(src, dst, message):
        if isinstance(message, Busy):
            heard.append(message)
        return message

    cluster.network.add_interceptor(watch)
    # The pipeline cap keeps later floods queued, so the per-client cap trips.
    flood(cluster, "R0", "F0", count=8)
    assert primary.counters.get("busy_replies") >= 1
    cluster.sim.run_for(0.2)
    assert heard
    busy = heard[0]
    assert busy.client_id == "F0"
    assert busy.replica_id == "R0"
    assert busy.auth is not None
    assert busy.retry_after_micros >= int(
        cluster.config.client_retry_max * 1_000_000
    )


def test_backups_shed_silently():
    """Busy is a primary-only reply: a backup sheds without answering (the
    client would otherwise get 3f+1 Busy messages per shed multicast)."""
    config = BFTConfig(admission_capacity=16, admission_per_client=1)
    cluster = kv_cluster(config=config)
    flood(cluster, "R1", "F0", count=5)
    backup = cluster.replica("R1")
    assert backup.counters.get("requests_shed") == 4
    assert not backup.counters.get("busy_replies")


def test_batching_fairness_hot_client_cannot_starve_slow_one():
    """FIFO-by-enqueue admission means a hot client's stream cannot push a
    slow client's older request out of the next batch: the slow request is
    in the batch that the very next pre-prepare carries."""
    config = BFTConfig(batch_max=4, admission_capacity=64, admission_per_client=64)
    cluster = kv_cluster(config=config)
    primary = cluster.replica("R0")
    # Freeze ordering so requests accumulate in admission order.
    primary.recovering = True
    cluster.client("SLOW")
    slow = Request(client_id="SLOW", reqid=1, op=encode_set(1, b"slow"))
    slow.auth = cluster.keys.make_authenticator(
        "SLOW", cluster.config.replica_ids, slow.signable_bytes()
    )
    primary.on_message(slow, "SLOW")
    flood(cluster, "R0", "HOT", count=12)
    # The hot client retransmits its whole backlog: refreshes must not
    # improve its position either.
    flood(cluster, "R0", "HOT", count=12)
    assert primary.pending.oldest_key() == ("SLOW", 1)
    primary.recovering = False
    primary.try_send_pre_prepare()
    first_batch = primary.log.slot(0, primary.last_executed + 1).pre_prepare.requests
    assert len(first_batch) == config.batch_max
    assert ("SLOW", 1) in {(r.client_id, r.reqid) for r in first_batch}


def test_executed_request_purges_superseded_queue_entries():
    """Once reqid r executes for a client, queued reqids <= r are dead weight
    (at-most-once forbids their execution) and are dropped with a counter."""
    config = BFTConfig(admission_capacity=64, admission_per_client=64)
    cluster = kv_cluster(config=config)
    backup = cluster.replica("R1")
    backup_only = [
        req("C0", 1, encode_set(0, b"old")),
        req("C0", 2, encode_set(0, b"older")),
    ]
    client = cluster.client("C0")
    for request in backup_only:
        request.auth = cluster.keys.make_authenticator(
            "C0", cluster.config.replica_ids, request.signable_bytes()
        )
    client._reqid = 2  # the real client moves past the stale reqids
    backup.on_message(backup_only[0], "C0")
    backup.on_message(backup_only[1], "C0")
    assert len(backup.pending) == 2
    assert client.invoke(encode_set(0, b"new")) == b"OK"
    assert len(backup.pending) == 0
    assert backup.counters.get("pending_superseded") >= 1


# -- open-loop load generator --------------------------------------------------


def test_open_loop_generator_offers_at_fixed_rate():
    cluster = kv_cluster()
    clients = [cluster.client(f"L-{i}") for i in range(4)]
    ops = []

    def op_factory(client_id, seq):
        ops.append((client_id, seq))
        return encode_set(2, f"{client_id}:{seq}".encode())

    swarm = OpenLoopLoadGenerator(cluster.sim, clients, rate=100.0, op_factory=op_factory)
    swarm.start()
    cluster.sim.run_until(1.0)
    swarm.stop()
    # Open loop: ~100 requests offered over 1s regardless of completions.
    assert 95 <= swarm.offered <= 105
    assert swarm.offered == len(ops)
    assert swarm.completed > 0
    per_client = {c.node_id: 0 for c in clients}
    for client_id, _seq in ops:
        per_client[client_id] += 1
    assert max(per_client.values()) - min(per_client.values()) <= 1
    # stop() really stops: no further requests are offered.
    offered = swarm.offered
    cluster.sim.run_for(0.5)
    assert swarm.offered == offered


def test_open_loop_generator_cancels_stale_invocations():
    """When the cadence outruns completion, the stale invocation is cancelled
    (reload-button semantics) rather than blocking the next request."""
    cluster = kv_cluster()
    cluster.crash("R2")
    cluster.crash("R3")  # no quorum: nothing completes
    clients = [cluster.client("L-0")]
    swarm = OpenLoopLoadGenerator(
        cluster.sim, clients, rate=50.0, op_factory=lambda c, s: encode_set(2, b"x")
    )
    swarm.start()
    cluster.sim.run_until(0.5)
    swarm.stop()
    assert swarm.completed == 0
    assert swarm.cancelled >= 20
    assert clients[0]._current is None


def test_open_loop_generator_validates_inputs():
    cluster = kv_cluster()
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator(cluster.sim, [], rate=10.0, op_factory=lambda c, s: b"")
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator(
            cluster.sim, [cluster.client("L-0")], rate=0.0, op_factory=lambda c, s: b""
        )


# -- request relay and damping -------------------------------------------------


def test_backup_relays_abandoned_requests_before_view_change():
    """A request only a backup still holds (its client went quiet, the
    primary never saw it) is relayed to the primary at the timer's first
    no-progress firing — and ordering resumes without any view change."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"warm"))
    backup = cluster.replica("R1")
    cluster.client("GONE")
    orphan = Request(client_id="GONE", reqid=1, op=encode_set(3, b"orphan"))
    orphan.auth = cluster.keys.make_authenticator(
        "GONE", cluster.config.replica_ids, orphan.signable_bytes()
    )
    backup.on_message(orphan, "GONE")
    assert ("GONE", 1) in backup.pending
    cluster.sim.run_for(2.0)
    assert backup.counters.get("requests_relayed") >= 1
    assert not backup.counters.get("request_timeouts")
    assert ("GONE", 1) not in backup.pending  # ordered after the relay
    assert cluster.replica("R0").view == 0
    assert client.invoke(encode_get(3)) == b"orphan"


def test_crashed_primary_still_triggers_prompt_view_change():
    """Damping and relay must not defang failover: with the primary dead and
    a live retransmitting client, the view change fires."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"warm"))
    cluster.crash("R0")
    assert client.invoke(encode_set(0, b"after"), timeout=30.0) == b"OK"
    assert cluster.replica("R1").view >= 1


def test_damping_requires_local_overload_evidence():
    """A near-empty admission queue means a stall is not saturation: the
    damping path stays cold on an idle cluster with one stuck request."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"warm"))
    cluster.crash("R0")
    client.invoke(encode_set(0, b"fail-over"), timeout=30.0)
    for replica_id in ("R1", "R2", "R3"):
        assert not cluster.replica(replica_id).counters.get("view_changes_damped")
