"""A crashed primary that already executed in-flight work must rejoin
*quietly*: no stale request tracking, no idle view-change churn.

Regression test for a liveness bug: the rejoining replica re-tracked
requests re-proposed by the new view's O-set even though it had executed
them before crashing; the orphaned entries kept its request timer firing and
it escalated view changes forever."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_set, kv_cluster


def test_rejoining_primary_quiesces():
    cluster = kv_cluster(config=BFTConfig(checkpoint_interval=8, log_window=16))
    client = cluster.client("C0")
    for i in range(10):
        client.invoke(encode_set(i % 4, bytes([i])))
    # R0 (primary) executed everything it proposed, then drops off.
    cluster.crash("R0")
    client.invoke(encode_set(0, b"post-failover"), timeout=30)
    cluster.restart("R0")
    cluster.settle(4.0)

    r0 = cluster.replica("R0")
    assert r0.view == 1  # caught up to the view change it missed
    assert r0.last_executed == 11
    assert not r0.in_flight, f"stale tracking: {sorted(r0.in_flight)}"
    assert not r0.view_changes.in_view_change

    # The whole cluster is quiescent: more idle time moves no views.
    views_before = [r.view for r in cluster.replicas]
    cluster.settle(5.0)
    assert [r.view for r in cluster.replicas] == views_before


def test_idle_cluster_starts_no_view_changes_after_failover():
    cluster = kv_cluster(config=BFTConfig(checkpoint_interval=8, log_window=16))
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"x"))
    cluster.crash("R0")
    client.invoke(encode_set(1, b"y"), timeout=30)
    cluster.restart("R0")
    cluster.settle(3.0)
    started_before = sum(r.counters.get("view_changes_started") for r in cluster.replicas)
    cluster.settle(6.0)
    started_after = sum(r.counters.get("view_changes_started") for r in cluster.replicas)
    assert started_after == started_before
