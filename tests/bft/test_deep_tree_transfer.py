"""State transfer over a deep partition tree (1024+ objects, 3+ levels):
the hierarchical walk prunes whole subtrees."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_set, kv_cluster


def test_transfer_scales_with_tree_depth():
    config = BFTConfig(checkpoint_interval=8, log_window=16)
    cluster = kv_cluster(config=config, num_slots=1024)
    service = cluster.service("R0")
    assert service.num_levels() >= 3  # depth check: arity 4 over 1024+

    client = cluster.client("C0")
    # Touch a scattered handful of the 1024 objects.
    for index in (0, 100, 500, 900, 1023):
        client.invoke(encode_set(index, b"seed"), timeout=60)
    cluster.settle(1.0)

    cluster.crash("R3")
    for round_number in range(30):
        client.invoke(encode_set(500, bytes([round_number])), timeout=60)
    cluster.restart("R3")
    cluster.settle(5.0)

    replica = cluster.replica("R3")
    assert replica.counters.get("state_transfers_completed") >= 1
    # Only the dirty object plus the touched client-table shards were
    # fetched — not the 1024-object array...
    assert replica.counters.get("objects_fetched") <= 8
    # ...after a walk that descended a few tree paths, not 1024 leaves.
    meta_queries = replica.counters.get("fetch_meta_sent")
    assert meta_queries <= 6 * service.num_levels()
    states = {
        rid: tuple(cluster.service(rid).cells) for rid in cluster.hosts
    }
    assert len(set(states.values())) == 1


def test_checkpoint_cost_independent_of_state_size():
    """COW checkpointing touches only modified objects, even with a large
    array (the paper's argument for incremental checkpoints)."""
    config = BFTConfig(checkpoint_interval=8, log_window=16)
    cluster = kv_cluster(config=config, num_slots=1024)
    client = cluster.client("C0")
    for i in range(16):
        client.invoke(encode_set(7, bytes([i])), timeout=60)
    cluster.settle(1.0)
    manager = cluster.service("R0").manager
    # Two checkpoints, one hot object: digest work stays tiny.
    assert manager.counters.get("checkpoint_digests") <= 8
    assert manager.counters.get("cow_copies") <= 8
