"""View-change message validation: forged or malformed certificates are
rejected (the safety half of the view-change protocol)."""

import pytest

from repro.bft.messages import (
    Checkpoint,
    NewView,
    Prepare,
    PrePrepare,
    PreparedProof,
    Request,
    ViewChange,
)
from repro.bft.testing import encode_set, kv_cluster


@pytest.fixture
def rig():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"warm"))
    return cluster


def make_view_change(cluster, sender, new_view=1, sign_as=None):
    replica = cluster.replica(sender)
    vc = ViewChange(
        new_view=new_view,
        stable_seqno=0,
        checkpoint_proof=[],
        prepared=[],
        replica_id=sender,
    )
    signer = cluster.sigs.keygen(sign_as or sender)
    vc.sig = signer.sign(vc.signable_bytes())
    return vc


def test_view_change_with_bad_signature_rejected(rig):
    cluster = rig
    target = cluster.replica("R1")
    vc = make_view_change(cluster, "R2")
    vc.sig = b"\x00" * 32
    target.view_changes.on_view_change(vc, "R2")
    assert target.counters.get("view_change_bad_sig") == 1
    assert "R2" not in target.view_changes.messages.get(1, {})


def test_view_change_from_wrong_sender_rejected(rig):
    cluster = rig
    target = cluster.replica("R1")
    vc = make_view_change(cluster, "R2")
    target.view_changes.on_view_change(vc, "R3")  # relayed under wrong identity
    assert "R2" not in target.view_changes.messages.get(1, {})


def test_prepared_proof_with_too_few_prepares_rejected(rig):
    cluster = rig
    target = cluster.replica("R1")
    request = Request(client_id="C0", reqid=99, op=b"fake")
    pp = PrePrepare(view=0, seqno=5, requests=[request], nondet=b"", primary_id="R0")
    pp.sig = cluster.sigs.keygen("R0").sign(pp.signable_bytes())
    prepare = Prepare(view=0, seqno=5, digest=pp.batch_digest(), replica_id="R2")
    prepare.sig = cluster.sigs.keygen("R2").sign(prepare.signable_bytes())
    proof = PreparedProof(pre_prepare=pp, prepares=[prepare])  # only 1 < 2f
    vc = ViewChange(
        new_view=1, stable_seqno=0, checkpoint_proof=[], prepared=[proof], replica_id="R2"
    )
    vc.sig = cluster.sigs.keygen("R2").sign(vc.signable_bytes())
    target.view_changes.on_view_change(vc, "R2")
    assert target.counters.get("view_change_invalid") == 1


def test_checkpoint_proof_must_be_quorum(rig):
    cluster = rig
    target = cluster.replica("R1")
    ckpt = Checkpoint(seqno=16, state_digest=b"\x01" * 32, replica_id="R2")
    ckpt.sig = cluster.sigs.keygen("R2").sign(ckpt.signable_bytes())
    vc = ViewChange(
        new_view=1,
        stable_seqno=16,
        checkpoint_proof=[ckpt],  # 1 < 2f+1
        prepared=[],
        replica_id="R2",
    )
    vc.sig = cluster.sigs.keygen("R2").sign(vc.signable_bytes())
    target.view_changes.on_view_change(vc, "R2")
    assert target.counters.get("view_change_invalid") == 1


def test_new_view_from_wrong_primary_rejected(rig):
    cluster = rig
    target = cluster.replica("R2")
    vcs = [make_view_change(cluster, sender) for sender in ("R1", "R2", "R3")]
    nv = NewView(view=1, view_changes=vcs, pre_prepares=[], primary_id="R3")
    nv.sig = cluster.sigs.keygen("R3").sign(nv.signable_bytes())
    target.view_changes.on_new_view(nv, "R3")
    assert target.view == 0  # primary(1) is R1, not R3


def test_new_view_with_tampered_o_rejected(rig):
    cluster = rig
    target = cluster.replica("R2")
    vcs = [make_view_change(cluster, sender) for sender in ("R1", "R2", "R3")]
    # Correct O would be empty (no prepared proofs, min_s == max_s == 0);
    # a primary that sneaks in an extra pre-prepare must be rejected.
    bogus_request = Request(client_id="evil", reqid=1, op=b"inject")
    extra = PrePrepare(view=1, seqno=1, requests=[bogus_request], nondet=b"", primary_id="R1")
    extra.sig = cluster.sigs.keygen("R1").sign(extra.signable_bytes())
    nv = NewView(view=1, view_changes=vcs, pre_prepares=[extra], primary_id="R1")
    nv.sig = cluster.sigs.keygen("R1").sign(nv.signable_bytes())
    target.view_changes.on_new_view(nv, "R1")
    assert target.view == 0
    assert target.counters.get("new_view_bad_o") == 1


def test_new_view_with_insufficient_view_changes_rejected(rig):
    cluster = rig
    target = cluster.replica("R2")
    vcs = [make_view_change(cluster, sender) for sender in ("R1", "R3")]  # 2 < 2f+1
    nv = NewView(view=1, view_changes=vcs, pre_prepares=[], primary_id="R1")
    nv.sig = cluster.sigs.keygen("R1").sign(nv.signable_bytes())
    target.view_changes.on_new_view(nv, "R1")
    assert target.view == 0


def test_valid_new_view_adopted(rig):
    cluster = rig
    target = cluster.replica("R2")
    vcs = [make_view_change(cluster, sender) for sender in ("R1", "R2", "R3")]
    nv = NewView(view=1, view_changes=vcs, pre_prepares=[], primary_id="R1")
    nv.sig = cluster.sigs.keygen("R1").sign(nv.signable_bytes())
    target.view_changes.on_new_view(nv, "R1")
    assert target.view == 1


def test_liveness_rule_joins_after_f_plus_one(rig):
    cluster = rig
    target = cluster.replica("R3")
    assert not target.view_changes.in_view_change
    target.view_changes.on_view_change(make_view_change(cluster, "R1", new_view=2), "R1")
    assert not target.view_changes.in_view_change  # 1 < f+1
    target.view_changes.on_view_change(make_view_change(cluster, "R2", new_view=2), "R2")
    assert target.view_changes.in_view_change  # f+1 = 2 demand view 2: join
    assert target.view_changes.pending_view == 2
