"""Network-level fuzzing: duplication, delay, and reordering of protocol
messages must never break safety (UDP semantics — the protocol is built for
them)."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set, kv_cluster

from tests.conftest import Cluster  # noqa: F401


def test_duplicate_every_message():
    """Deliver every protocol message twice."""
    cluster = kv_cluster(seed=4)

    def duplicate(src, dst, message):
        # Schedule a second delivery slightly later (same object: receivers
        # must be idempotent).
        cluster.sim.schedule(0.002, lambda: cluster.network._deliver(src, dst, message))
        return message

    cluster.network.add_interceptor(duplicate)
    client = cluster.client("C0")
    for i in range(15):
        assert client.invoke(encode_set(i % 4, bytes([i])), timeout=60) == b"OK"
    cluster.settle(2.0)
    assert len({r.last_executed for r in cluster.replicas}) == 1
    states = {rid: tuple(cluster.service(rid).cells) for rid in cluster.hosts}
    assert len(set(states.values())) == 1
    # Dedup: appends applied exactly once despite duplicate deliveries.
    assert client.invoke(encode_get(0), timeout=60) == bytes([12])


def test_random_delay_reordering():
    """Random extra delays reorder messages arbitrarily."""
    cluster = kv_cluster(seed=5)

    def jitter(src, dst, message):
        if cluster.sim.rng.random() < 0.3:
            delay = cluster.sim.rng.uniform(0.001, 0.02)
            cluster.sim.schedule(
                delay, lambda: cluster.network._deliver(src, dst, message)
            )
            return None  # swallowed now, delivered later
        return message

    cluster.network.add_interceptor(jitter)
    client = cluster.client("C0")
    from repro.bft.testing import encode_append

    for i in range(12):
        client.invoke(encode_append(0, bytes([i])), timeout=60)
    cluster.settle(3.0)
    expected = bytes(range(12))
    values = {cluster.service(rid).cells[0] for rid in cluster.hosts}
    assert values == {expected}


def test_duplication_and_loss_together():
    from repro.net.network import NetworkConfig
    from repro.bft.testing import KVStateMachine

    cluster = Cluster(
        lambda rid: (lambda: KVStateMachine(num_slots=16)),
        config=BFTConfig(checkpoint_interval=8, log_window=16),
        net_config=NetworkConfig(delay=0.0005, jitter=0.001, drop_rate=0.05),
        seed=6,
    )

    def sometimes_duplicate(src, dst, message):
        if cluster.sim.rng.random() < 0.2:
            cluster.sim.schedule(
                0.003, lambda: cluster.network._deliver(src, dst, message)
            )
        return message

    cluster.network.add_interceptor(sometimes_duplicate)
    client = cluster.client("C0")
    for i in range(20):
        assert client.invoke(encode_set(i % 4, bytes([i])), timeout=120) == b"OK"
    cluster.settle(3.0)
    states = {rid: tuple(cluster.service(rid).cells) for rid in cluster.hosts}
    assert len(set(states.values())) == 1
