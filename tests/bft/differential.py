"""Differential protocol-equivalence harness for the RECIPE-style fast path.

One seeded fault plan is replayed through several :class:`BFTConfig`
variants — the baseline three-phase protocol and the fast-path stages
(pipelined ordering, speculative execution, read leases) — on the same
deterministic simulator.  The equivalence contract:

* every safety oracle holds in every configuration;
* requests acknowledged under *all* configurations got byte-identical
  replies;
* the committed operation sequences, projected onto the operations every
  configuration committed, are identical (same operations, same order).

The projection handles legitimate divergence in *coverage*: a request can
time out under one configuration and complete under another (timing shifts
with batching depth), but anything both configurations committed must agree
byte-for-byte.  A fast path that reordered, dropped, or double-executed
work, or leaked an uncommitted speculative result to a client, breaks one
of these checks or an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bft.testing import encode_set
from repro.explore.plan import FaultPlan
from repro.explore.runner import RunOutcome, run_plan

#: The configuration ladder: each rung enables one more fast-path mechanism,
#: so a failure isolates which mechanism broke equivalence.
DIFF_CONFIGS: Tuple[Tuple[str, Dict], ...] = (
    ("baseline", {}),
    ("pipelined", {"pipeline_depth": 8}),
    (
        "speculative",
        {"pipeline_depth": 8, "speculative_execution": True},
    ),
    (
        "fast-path",
        {
            "pipeline_depth": 8,
            "speculative_execution": True,
            "read_leases": True,
        },
    ),
)


@dataclass
class DifferentialVerdict:
    """Comparison of one plan across the configuration ladder."""

    plan: FaultPlan
    outcomes: Dict[str, RunOutcome]
    mismatches: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.equivalent:
            return f"plan seed={self.plan.seed}: all configurations equivalent"
        lines = [f"plan seed={self.plan.seed}: {len(self.mismatches)} mismatch(es)"]
        lines.extend(f"  - {m}" for m in self.mismatches)
        return "\n".join(lines)


def workload_ops(plan: FaultPlan) -> List[bytes]:
    """The exact op bytes ``run_plan`` issues for each workload request."""
    return [
        encode_set(i % 8, bytes([i % 251, plan.seed % 251]))
        for i in range(plan.requests)
    ]


def run_differential(
    plan: FaultPlan,
    plant: Optional[str] = None,
    check_interval: int = 10,
    configs: Tuple[Tuple[str, Dict], ...] = DIFF_CONFIGS,
) -> DifferentialVerdict:
    """Replay ``plan`` under every configuration and compare the outcomes."""
    outcomes: Dict[str, RunOutcome] = {}
    for name, overrides in configs:
        outcomes[name] = run_plan(
            plan,
            plant=plant,
            check_interval=check_interval,
            config_overrides=overrides or None,
        )
    return compare_outcomes(plan, outcomes, [name for name, _overrides in configs])


def compare_outcomes(
    plan: FaultPlan, outcomes: Dict[str, RunOutcome], names: List[str]
) -> DifferentialVerdict:
    """Judge already-collected outcomes (the first name is the reference)."""
    verdict = DifferentialVerdict(plan=plan, outcomes=outcomes)
    baseline = names[0]

    for name in names:
        violation = outcomes[name].violation
        if violation is not None:
            verdict.mismatches.append(
                f"{name}: oracle violation [{violation.oracle}] {violation.detail}"
            )
    if verdict.mismatches:
        return verdict  # violations make the remaining comparisons noise

    # Client-visible replies: indices acknowledged under every configuration
    # must carry byte-identical results.
    replies = {name: outcomes[name].client_replies or [] for name in names}
    common_acked = [
        i
        for i in range(plan.requests)
        if all(i < len(replies[name]) and replies[name][i] is not None for name in names)
    ]
    for i in common_acked:
        values = {name: replies[name][i] for name in names}
        if len(set(values.values())) > 1:
            verdict.mismatches.append(
                f"request {i}: divergent replies "
                + ", ".join(f"{n}={v!r}" for n, v in sorted(values.items()))
            )

    # Committed operation sequences, projected onto the intersection: the
    # operations every configuration committed must appear in the same order
    # with the same bytes.
    histories = {name: outcomes[name].committed_history or [] for name in names}
    shared = set(histories[baseline])
    for name in names[1:]:
        shared &= set(histories[name])
    projected = {
        name: [entry for entry in histories[name] if entry in shared]
        for name in names
    }
    for name in names[1:]:
        if projected[name] != projected[baseline]:
            verdict.mismatches.append(
                f"{name}: committed sequence diverges from {baseline} on their "
                f"common operations ({len(projected[name])} vs "
                f"{len(projected[baseline])} entries)"
            )
    return verdict
