"""Protocol message encodings and digests."""

import pytest

from repro.bft.messages import (
    Checkpoint,
    Commit,
    Prepare,
    PrePrepare,
    Reply,
    Request,
    Status,
    batch_digest,
)


def make_request(reqid=1, op=b"op", read_only=False):
    return Request(client_id="C0", reqid=reqid, op=op, read_only=read_only)


def test_request_digest_depends_on_all_fields():
    base = make_request().digest()
    assert make_request(reqid=2).digest() != base
    assert make_request(op=b"other").digest() != base
    assert make_request(read_only=True).digest() != base
    assert make_request().digest() == base


def test_batch_digest_covers_nondet():
    batch = [make_request(1), make_request(2)]
    assert batch_digest(batch, b"t1") != batch_digest(batch, b"t2")


def test_batch_digest_order_sensitive():
    a, b = make_request(1), make_request(2)
    assert batch_digest([a, b], b"") != batch_digest([b, a], b"")


def test_pre_prepare_signable_binds_batch():
    pp1 = PrePrepare(view=0, seqno=1, requests=[make_request(1)], nondet=b"", primary_id="R0")
    pp2 = PrePrepare(view=0, seqno=1, requests=[make_request(2)], nondet=b"", primary_id="R0")
    assert pp1.signable_bytes() != pp2.signable_bytes()


def test_wire_size_includes_payload():
    small = PrePrepare(view=0, seqno=1, requests=[], nondet=b"", primary_id="R0")
    big = PrePrepare(
        view=0, seqno=1, requests=[make_request(op=b"x" * 1000)], nondet=b"", primary_id="R0"
    )
    assert big.wire_size() > small.wire_size() + 1000


def test_distinct_message_types_never_collide():
    """Type tags in the canonical encodings keep a Prepare from being
    replayed as a Commit."""
    prepare = Prepare(view=0, seqno=1, digest=b"\x00" * 32, replica_id="R1")
    commit = Commit(view=0, seqno=1, digest=b"\x00" * 32, replica_id="R1")
    assert prepare.signable_bytes() != commit.signable_bytes()


def test_checkpoint_signable_covers_digest():
    a = Checkpoint(seqno=16, state_digest=b"\x01" * 32, replica_id="R0")
    b = Checkpoint(seqno=16, state_digest=b"\x02" * 32, replica_id="R0")
    assert a.signable_bytes() != b.signable_bytes()


def test_reply_signable_covers_result():
    a = Reply(view=0, reqid=1, client_id="C0", replica_id="R0", result=b"x")
    b = Reply(view=0, reqid=1, client_id="C0", replica_id="R0", result=b"y")
    assert a.signable_bytes() != b.signable_bytes()


def test_status_roundtrip_fields():
    status = Status(replica_id="R1", view=3, stable_seqno=16, last_executed=20)
    assert b"STATUS" in status.signable_bytes()
    assert status.wire_size() > 0
