"""Non-determinism agreement: monotone, validated timestamps (E11)."""

import pytest

from repro.bft.nondet import TimestampAgreement, decode_timestamp, encode_timestamp
from repro.util.clock import ManualClock


def test_encode_decode_roundtrip():
    assert decode_timestamp(encode_timestamp(123456)) == 123456


@pytest.mark.parametrize("length", [0, 1, 7, 9, 16])
def test_decode_rejects_wrong_length(length):
    with pytest.raises(ValueError):
        decode_timestamp(b"\x00" * length)


def test_accept_raises_on_wrong_length_payload():
    """``accept`` runs at execution time, after agreement: a wrong-length
    payload there is a protocol bug, not a Byzantine proposal, so it raises
    rather than being silently coerced."""
    agreement = TimestampAgreement(ManualClock(start=1.0))
    with pytest.raises(ValueError):
        agreement.accept(b"\x00" * 7)
    with pytest.raises(ValueError):
        agreement.accept(b"\x00" * 9)


@pytest.mark.parametrize("length", [7, 9])
def test_check_rejects_wrong_length_without_raising(length):
    """``check`` judges a *primary's* proposal: malformed bytes must be
    rejected (refuse-to-prepare), never raise into the replica loop."""
    agreement = TimestampAgreement(ManualClock(start=1.0))
    assert not agreement.check(b"\x00" * length)


def test_propose_tracks_clock():
    clock = ManualClock(start=2.0)
    agreement = TimestampAgreement(clock)
    assert decode_timestamp(agreement.propose()) == 2_000_000


def test_back_to_back_proposals_strictly_increase():
    clock = ManualClock(start=1.0)
    agreement = TimestampAgreement(clock)
    first = decode_timestamp(agreement.propose())
    second = decode_timestamp(agreement.propose())
    assert second == first + 1


def test_check_accepts_fresh_value():
    clock = ManualClock(start=1.0)
    agreement = TimestampAgreement(clock)
    assert agreement.check(encode_timestamp(1_000_000))


def test_check_rejects_far_future():
    clock = ManualClock(start=1.0)
    agreement = TimestampAgreement(clock, max_skew=0.5)
    assert not agreement.check(encode_timestamp(10_000_000))


def test_check_rejects_non_monotone():
    clock = ManualClock(start=2.0)
    agreement = TimestampAgreement(clock)
    agreement.accept(encode_timestamp(1_500_000))
    assert not agreement.check(encode_timestamp(1_500_000))
    assert not agreement.check(encode_timestamp(1_000_000))
    assert agreement.check(encode_timestamp(1_500_001))


def test_check_rejects_garbage():
    agreement = TimestampAgreement(ManualClock())
    assert not agreement.check(b"junk")


def test_accept_returns_decoded_value():
    agreement = TimestampAgreement(ManualClock(start=5.0))
    assert agreement.accept(encode_timestamp(4_000_000)) == 4_000_000


def test_propose_stays_monotone_after_accepting_newer_value():
    """A new primary that just accepted a batch from its predecessor must
    propose strictly above it, even if its own clock lags."""
    agreement = TimestampAgreement(ManualClock(start=1.0))
    agreement.accept(encode_timestamp(5_000_000))  # predecessor ran ahead
    assert decode_timestamp(agreement.propose()) == 5_000_001


def test_backup_refusal_edges_around_skew_boundary():
    clock = ManualClock(start=1.0)
    agreement = TimestampAgreement(clock, max_skew=1.0)
    assert agreement.check(encode_timestamp(2_000_000))  # exactly at the bound
    assert not agreement.check(encode_timestamp(2_000_001))  # one past it


def test_replicas_agree_on_proposed_value():
    """The whole point: N replicas applying the same nondet value produce
    identical timestamps regardless of their local clocks."""
    primary_clock = ManualClock(start=3.0)
    primary = TimestampAgreement(primary_clock)
    proposal = primary.propose()
    backups = [TimestampAgreement(ManualClock(start=3.0 + i * 0.1)) for i in range(3)]
    accepted = {b.accept(proposal) for b in backups if b.check(proposal)}
    assert accepted == {3_000_000}
