"""Replica-side message validation: everything a Byzantine sender might try
on the normal-case path gets dropped with the right counter."""

import pytest

from repro.bft.messages import Commit, Prepare, PrePrepare, Request
from repro.bft.testing import encode_set, kv_cluster


@pytest.fixture
def rig():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"warm"))
    return cluster


def signed_pre_prepare(cluster, view, seqno, primary="R0", signer=None, requests=None):
    request = Request(client_id="C0", reqid=77, op=encode_set(1, b"x"))
    request.auth = cluster.keys.make_authenticator(
        "C0", cluster.config.replica_ids, request.signable_bytes()
    )
    pp = PrePrepare(
        view=view,
        seqno=seqno,
        requests=requests if requests is not None else [request],
        nondet=b"",
        primary_id=primary,
    )
    pp.sig = cluster.sigs.keygen(signer or primary).sign(pp.signable_bytes())
    return pp


def deliver(cluster, dst, src, message):
    message.auth = cluster.keys.make_authenticator(
        src, cluster.config.replica_ids, message.signable_bytes()
    )
    cluster.replica(dst).on_message(message, src)


def test_pre_prepare_from_non_primary_rejected(rig):
    cluster = rig
    pp = signed_pre_prepare(cluster, view=0, seqno=5, primary="R2", signer="R2")
    deliver(cluster, "R1", "R2", pp)
    assert cluster.replica("R1").counters.get("pre_prepare_wrong_primary") == 1
    assert cluster.replica("R1").log.get(0, 5) is None


def test_pre_prepare_relayed_by_third_party_rejected(rig):
    cluster = rig
    pp = signed_pre_prepare(cluster, view=0, seqno=5)
    deliver(cluster, "R1", "R3", pp)  # correct primary id, wrong network source
    assert cluster.replica("R1").counters.get("pre_prepare_relayed") == 1


def test_pre_prepare_with_forged_signature_rejected(rig):
    cluster = rig
    pp = signed_pre_prepare(cluster, view=0, seqno=5, signer="R3")  # wrong key
    deliver(cluster, "R1", "R0", pp)
    assert cluster.replica("R1").counters.get("pre_prepare_bad_sig") == 1


def test_pre_prepare_outside_window_rejected(rig):
    cluster = rig
    beyond = cluster.config.log_window + 100
    pp = signed_pre_prepare(cluster, view=0, seqno=beyond)
    deliver(cluster, "R1", "R0", pp)
    assert cluster.replica("R1").counters.get("pre_prepare_out_of_window") == 1


def test_pre_prepare_for_stale_view_rejected(rig):
    cluster = rig
    replica = cluster.replica("R1")
    replica.view = 2  # pretend we moved on
    pp = signed_pre_prepare(cluster, view=0, seqno=5)
    deliver(cluster, "R1", "R0", pp)
    assert replica.counters.get("pre_prepare_wrong_view") == 1


def test_conflicting_pre_prepare_counted_not_accepted(rig):
    cluster = rig
    first = signed_pre_prepare(cluster, view=0, seqno=5)
    deliver(cluster, "R1", "R0", first)
    conflicting = signed_pre_prepare(cluster, view=0, seqno=5, requests=[])
    deliver(cluster, "R1", "R0", conflicting)
    replica = cluster.replica("R1")
    assert replica.counters.get("conflicting_pre_prepare") == 1
    slot = replica.log.get(0, 5)
    assert slot.pre_prepare.batch_digest() == first.batch_digest()


def test_prepare_claiming_to_be_primary_rejected(rig):
    cluster = rig
    prepare = Prepare(view=0, seqno=5, digest=b"\x00" * 32, replica_id="R0")
    prepare.sig = cluster.sigs.keygen("R0").sign(prepare.signable_bytes())
    deliver(cluster, "R1", "R0", prepare)
    assert cluster.replica("R1").counters.get("prepare_from_primary") == 1


def test_prepare_relayed_under_wrong_identity_rejected(rig):
    cluster = rig
    prepare = Prepare(view=0, seqno=5, digest=b"\x00" * 32, replica_id="R2")
    prepare.sig = cluster.sigs.keygen("R2").sign(prepare.signable_bytes())
    deliver(cluster, "R1", "R3", prepare)  # src != replica_id
    slot = cluster.replica("R1").log.get(0, 5)
    assert slot is None or "R2" not in slot.prepares


def test_unauthenticated_message_dropped(rig):
    cluster = rig
    pp = signed_pre_prepare(cluster, view=0, seqno=5)
    pp.auth = None
    cluster.replica("R1").on_message(pp, "R0")
    assert cluster.replica("R1").counters.get("auth_missing") == 1


def test_request_with_forged_client_auth_dropped(rig):
    cluster = rig
    request = Request(client_id="victim", reqid=1, op=encode_set(2, b"evil"))
    # MAC'd with the WRONG principal's keys (the attacker's own).
    request.auth = cluster.keys.make_authenticator(
        "attacker", cluster.config.replica_ids, request.signable_bytes()
    )
    before = cluster.replica("R0").counters.get("auth_failed")
    cluster.replica("R0").on_message(request, "attacker")
    cluster.settle(0.5)
    # The request never enters the pipeline.
    assert ("victim", 1) not in cluster.replica("R0").pending
    assert ("victim", 1) not in cluster.replica("R0").in_flight


def test_primary_cannot_fabricate_client_requests(rig):
    """A Byzantine primary forging a batch on behalf of a client fails: the
    batched request lacks the client's authenticator."""
    cluster = rig
    forged = Request(client_id="victim", reqid=9, op=encode_set(3, b"planted"))
    forged.auth = cluster.keys.make_authenticator(
        "R0", cluster.config.replica_ids, forged.signable_bytes()
    )  # primary's keys, not the client's
    pp = PrePrepare(view=0, seqno=5, requests=[forged], nondet=b"", primary_id="R0")
    pp.sig = cluster.sigs.keygen("R0").sign(pp.signable_bytes())
    deliver(cluster, "R1", "R0", pp)
    replica = cluster.replica("R1")
    assert replica.counters.get("pre_prepare_bad_request") == 1
    assert replica.log.get(0, 5) is None


def test_checkpoint_with_bad_signature_ignored(rig):
    cluster = rig
    from repro.bft.messages import Checkpoint

    ckpt = Checkpoint(seqno=8, state_digest=b"\x01" * 32, replica_id="R2")
    ckpt.sig = b"\x00" * 32
    deliver(cluster, "R1", "R2", ckpt)
    assert cluster.replica("R1").counters.get("checkpoint_bad_sig") == 1
    assert "R2" not in cluster.replica("R1").checkpoint_votes.get(8, {})
