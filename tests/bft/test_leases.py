"""Read-lease properties (satellite of the fast path).

The lease protocol's safety contract is the same as the paper's read-only
optimization — a client accepts a read only on 2f+1 matching results — so
the properties under test are freshness and lifecycle:

* a leased read never returns a value older than the latest committed
  conflicting write the client observed acknowledged;
* leases die on conflicting writes (revocation + self-revocation) and on
  view changes, and reads never regress across either.
"""

from __future__ import annotations

import random

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set, recording_cluster

FAST_PATH = dict(
    checkpoint_interval=8,
    log_window=16,
    pipeline_depth=8,
    speculative_execution=True,
    read_leases=True,
)


def fast_cluster(seed: int = 0):
    cluster, recorder = recording_cluster(config=BFTConfig(**FAST_PATH), seed=seed)
    return cluster, recorder


def _value(version: int) -> bytes:
    return bytes([version % 251, version // 251])


def _version(value: bytes) -> int:
    assert len(value) == 2, f"unexpected cell value {value!r}"
    return value[0] + 251 * value[1]


@pytest.mark.parametrize("seed", [1, 7, 13, 29, 101])
def test_leased_read_never_stale_sequential(seed):
    """Alternating committed writes and leased reads, seeded order: every
    read must return exactly the latest acknowledged write (sequentially
    there is nothing else it could correctly be)."""
    cluster, _recorder = fast_cluster(seed)
    writer = cluster.client("W")
    reader = cluster.client("RD")
    rng = random.Random(seed)
    version = 0
    writer.invoke(encode_set(3, _value(version)))
    for _step in range(24):
        if rng.random() < 0.5:
            version += 1
            assert writer.invoke(encode_set(3, _value(version))) == b"OK"
        else:
            observed = _version(reader.invoke(encode_get(3), read_only=True))
            assert observed == version, (
                f"read returned version {observed} after write {version} was "
                f"acknowledged"
            )
    served = sum(
        host.replica.counters.get("leased_reads_served")
        for host in cluster.hosts.values()
    )
    assert served > 0, "no read was ever served from a lease — test is vacuous"


@pytest.mark.parametrize("seed", [3, 17, 43])
def test_leased_read_monotonic_under_concurrency(seed):
    """A read racing a write may see the old or the new version, but never
    one older than the last acknowledged write, and successive reads never
    go backwards."""
    cluster, _recorder = fast_cluster(seed)
    writer = cluster.client("W")
    reader = cluster.client("RD")
    writer.invoke(encode_set(3, _value(0)))
    acked = 0
    last_read = 0
    for version in range(1, 16):
        write_box: list = []
        read_box: list = []
        floor = acked
        writer.invoke_async(encode_set(3, _value(version)), write_box.append)
        reader.invoke_async(encode_get(3), read_box.append, read_only=True)
        ok = cluster.sim.run_until_condition(
            lambda: bool(write_box) and bool(read_box), timeout=30.0
        )
        assert ok, "write/read pair did not complete"
        assert write_box[0] == b"OK"
        acked = version
        observed = _version(read_box[0])
        assert observed >= floor, (
            f"read returned version {observed}, older than acknowledged {floor}"
        )
        assert observed >= last_read, (
            f"reads went backwards: {observed} after {last_read}"
        )
        last_read = observed


def test_writes_revoke_leases():
    """A granted lease dies before a conflicting write commits: after a
    quiet period (lease granted) a new write must revoke/self-revoke, and a
    subsequent read sees the write."""
    cluster, _recorder = fast_cluster(5)
    writer = cluster.client("W")
    reader = cluster.client("RD")
    writer.invoke(encode_set(3, _value(1)))
    # Quiet read: gets leases granted.
    assert _version(reader.invoke(encode_get(3), read_only=True)) == 1
    grants = sum(
        host.replica.counters.get("lease_grants") for host in cluster.hosts.values()
    )
    assert grants > 0
    writer.invoke(encode_set(3, _value(2)))
    revoked = sum(
        host.replica.counters.get("lease_revokes")
        + host.replica.counters.get("leases_self_revoked")
        for host in cluster.hosts.values()
    )
    assert revoked > 0, "write committed without revoking the outstanding lease"
    assert _version(reader.invoke(encode_get(3), read_only=True)) == 2


def test_leases_die_on_view_change():
    """Crashing the primary invalidates every outstanding lease: no replica
    may keep a servable lease from the dead view, and reads after the view
    change still return the latest committed value."""
    cluster, _recorder = fast_cluster(9)
    writer = cluster.client("W")
    reader = cluster.client("RD")
    writer.invoke(encode_set(3, _value(4)))
    assert _version(reader.invoke(encode_get(3), read_only=True)) == 4
    held = [
        rid
        for rid, host in cluster.hosts.items()
        if host.replica._lease is not None
    ]
    assert held, "no replica ever held a lease before the crash"
    cluster.crash("R0")
    # Drive a write through: it forces the view change to complete.
    assert writer.invoke(encode_set(3, _value(5)), timeout=30.0) == b"OK"
    for rid, host in cluster.hosts.items():
        if rid == "R0":
            continue
        replica = host.replica
        assert replica.view > 0, f"{rid} never left view 0"
        lease = replica._lease
        assert lease is None or lease[0] == replica.view, (
            f"{rid} kept a lease from dead view {lease[0]} while in view "
            f"{replica.view}"
        )
    assert _version(reader.invoke(encode_get(3), read_only=True)) == 5


def test_leased_reads_refused_while_stale():
    """A lease holder that has not executed up to the granted seqno refuses
    to serve — the client then needs another replica or the ordered
    fallback, but never sees stale state.  Exercised by partitioning one
    lease holder away during writes, then reading."""
    cluster, _recorder = fast_cluster(21)
    writer = cluster.client("W")
    reader = cluster.client("RD")
    writer.invoke(encode_set(3, _value(7)))
    assert _version(reader.invoke(encode_get(3), read_only=True)) == 7
    # R2 misses the next writes (it keeps its old lease state).
    cluster.network.partition(("R0", "R1", "R3"), ("R2",))
    for version in (8, 9):
        assert writer.invoke(encode_set(3, _value(version)), timeout=30.0) == b"OK"
    cluster.heal()
    observed = _version(reader.invoke(encode_get(3), read_only=True, timeout=30.0))
    assert observed == 9, f"read returned stale version {observed}"
