"""Differential protocol-equivalence suite (satellite of the fast path).

Every test replays one seeded fault plan through the configuration ladder in
:mod:`tests.bft.differential` — baseline, pipelined, pipelined+speculative,
full fast path — and demands byte-identical committed sequences and client
replies on everything the configurations have in common, plus a clean bill
from every safety oracle in every configuration.
"""

from __future__ import annotations

import random

import pytest

from repro.explore.plan import FaultPlan, FaultStep, generate_plan
from tests.bft.differential import DIFF_CONFIGS, compare_outcomes, run_differential

# 20 generated fault schedules (crashes, restarts, partitions, drops,
# Byzantine behaviors, proactive recovery), derived exactly like an
# exploration session so coverage matches what `repro explore` would run.
_GENERATED_SEEDS = [random.Random(0xD1FF).randrange(2**31) for _ in range(20)]


@pytest.mark.parametrize("seed", _GENERATED_SEEDS)
def test_generated_plans_equivalent(seed):
    plan = generate_plan(seed, requests=16)
    verdict = run_differential(plan)
    assert verdict.equivalent, verdict.describe()


def test_quiet_plan_exercises_every_mechanism():
    """On a fault-free plan the ladder must be equivalent *and* the fast-path
    runs must demonstrably use their mechanisms — a dormant fast path would
    make the whole suite vacuous."""
    plan = FaultPlan(seed=77, requests=24, steps=[])
    verdict = run_differential(plan)
    assert verdict.equivalent, verdict.describe()
    assert verdict.outcomes["baseline"].counters["spec_batches"] == 0
    for name in ("speculative", "fast-path"):
        counters = verdict.outcomes[name].counters
        assert counters["spec_batches"] > 0, f"{name} never speculated"
        assert counters["spec_promotions"] > 0, f"{name} never promoted"
        assert counters["tentative_replies_accepted"] > 0, (
            f"{name}: client never accepted a tentative quorum"
        )
    assert verdict.outcomes["fast-path"].counters["lease_grants"] > 0


def test_primary_crash_during_speculation():
    """A view change while batches are speculated: the fast path must roll
    back and re-converge on the new primary's order, with histories and
    replies still byte-identical to the baseline protocol's."""
    plan = FaultPlan(
        seed=11,
        requests=24,
        steps=[
            FaultStep(kind="crash", at=0.02, target="R0"),
            FaultStep(kind="restart", at=0.3, target="R0"),
        ],
    )
    verdict = run_differential(plan)
    assert verdict.equivalent, verdict.describe()
    counters = verdict.outcomes["fast-path"].counters
    assert counters["view_changes_started"] > 0, "plan never forced a view change"
    assert counters["spec_rollbacks"] > 0, (
        "view change never caught open speculation frames — the scenario "
        "this test exists for did not occur"
    )


def test_repeated_primary_crashes():
    """Back-to-back view changes (two primaries in sequence die) under the
    full ladder."""
    plan = FaultPlan(
        seed=23,
        requests=24,
        steps=[
            FaultStep(kind="crash", at=0.02, target="R0"),
            FaultStep(kind="restart", at=0.25, target="R0"),
            FaultStep(kind="crash", at=0.4, target="R1"),
            FaultStep(kind="restart", at=0.6, target="R1"),
        ],
    )
    verdict = run_differential(plan)
    assert verdict.equivalent, verdict.describe()


def test_partitioned_primary():
    """The primary is isolated (not crashed): speculation on the majority
    side must survive the resulting view change."""
    plan = FaultPlan(
        seed=31,
        requests=20,
        steps=[
            FaultStep(
                kind="partition", at=0.02, groups=(("R0",), ("R1", "R2", "R3"))
            ),
            FaultStep(kind="heal", at=0.35),
        ],
    )
    verdict = run_differential(plan)
    assert verdict.equivalent, verdict.describe()


def test_lossy_network():
    """Message loss stresses retransmission through the duplicate-request
    path, where a tentative reply must never be re-sent as committed."""
    plan = FaultPlan(seed=47, requests=20, steps=[], drop_rate=0.08)
    verdict = run_differential(plan)
    assert verdict.equivalent, verdict.describe()


def test_differential_detects_divergent_replies():
    """The harness itself must be able to fail: tamper with one
    configuration's recorded replies and the comparison must flag it."""
    plan = FaultPlan(seed=5, requests=8, steps=[])
    verdict = run_differential(plan, configs=DIFF_CONFIGS[:2])
    assert verdict.equivalent, verdict.describe()
    verdict.outcomes["pipelined"].client_replies[3] = b"CORRUPT"
    tampered = compare_outcomes(plan, verdict.outcomes, ["baseline", "pipelined"])
    assert not tampered.equivalent
    assert any("request 3" in m for m in tampered.mismatches), tampered.mismatches


def test_differential_detects_reordered_history():
    """Tampering with the committed sequence must be flagged too."""
    plan = FaultPlan(seed=5, requests=8, steps=[])
    verdict = run_differential(plan, configs=DIFF_CONFIGS[:2])
    history = verdict.outcomes["pipelined"].committed_history
    assert len(history) >= 2
    history[0], history[1] = history[1], history[0]
    tampered = compare_outcomes(plan, verdict.outcomes, ["baseline", "pipelined"])
    assert not tampered.equivalent
    assert any("committed sequence" in m for m in tampered.mismatches), (
        tampered.mismatches
    )
