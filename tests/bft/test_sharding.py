"""Sharded deployments: routing through the shard map, cross-shard 2PC from
the client side, coordinator recovery, and whole-deployment determinism."""

import pytest

from repro.bft.sharding import sharded_kv_cluster
from repro.bft.testing import encode_get, encode_set


def _sharded(num_shards=2, **kwargs):
    kwargs.setdefault("objects_per_shard", 8)
    return sharded_kv_cluster(num_shards, **kwargs)


# -- routing -------------------------------------------------------------------


def test_single_shard_ops_land_on_the_owning_group():
    sharded = _sharded()
    client = sharded.client("C0")
    assert client.invoke(encode_set(1, b"left")) == b"OK"
    assert client.invoke(encode_set(9, b"right")) == b"OK"
    # Global index 9 is shard 1's local slot 1; shard 0's slot 1 holds "left".
    assert sharded.shard(0).service("R0").cells[1] == b"left"
    assert sharded.shard(1).service("R0").cells[1] == b"right"
    assert client.invoke(encode_get(9), read_only=True) == b"right"


def test_out_of_range_index_is_rejected_locally():
    sharded = _sharded()
    with pytest.raises(ValueError):
        sharded.client("C0").invoke(encode_set(16, b"x"))


def test_clients_on_different_shards_are_independent():
    sharded = _sharded()
    a, b = sharded.client("A"), sharded.client("B")
    assert a.invoke(encode_set(0, b"a")) == b"OK"
    assert b.invoke(encode_set(8, b"b")) == b"OK"
    assert a.invoke(encode_get(8), read_only=True) == b"b"


# -- cross-shard transactions --------------------------------------------------


def test_cross_shard_commit_applies_on_both_groups():
    sharded = _sharded()
    client = sharded.client("C0")
    decision = client.invoke_txn([(1, b"left"), (9, b"right")])
    assert decision is True
    assert sharded.shard(0).service("R0").cells[1] == b"left"
    assert sharded.shard(1).service("R0").cells[1] == b"right"
    totals = sharded.total_counters()
    assert totals.get("txns_started") == 1
    assert totals.get("txns_committed") == 1
    # One prepare + one decide executed on every replica of both groups.
    assert totals.get("txn_prepares") == 8
    assert totals.get("txn_commits_applied") == 8


def test_single_shard_txn_commits():
    sharded = _sharded()
    assert sharded.client("C0").invoke_txn([(3, b"v")]) is True
    assert sharded.shard(0).service("R0").cells[3] == b"v"


def test_conflicting_transactions_one_commits_one_aborts():
    sharded = _sharded()
    a, b = sharded.client("A"), sharded.client("B")
    outcomes = {}
    a.invoke_txn_async([(1, b"a"), (9, b"a")], lambda ok: outcomes.setdefault("A", ok))
    b.invoke_txn_async([(1, b"b"), (9, b"b")], lambda ok: outcomes.setdefault("B", ok))
    assert sharded.sim.run_until_condition(lambda: len(outcomes) == 2, timeout=30)
    assert sorted(outcomes.values()) == [False, True]
    winner = [name for name, ok in outcomes.items() if ok][0]
    assert sharded.shard(0).service("R0").cells[1] == winner.lower().encode()
    # The loser's abort released its locks: a fresh transaction goes through.
    assert a.invoke_txn([(1, b"again"), (9, b"again")]) is True


def test_txn_with_out_of_range_write_is_rejected_at_routing():
    sharded = _sharded()
    with pytest.raises(ValueError):
        sharded.client("C0").invoke_txn([(1, b"v"), (16, b"v")])
    assert sharded.total_counters().get("txns_started") == 0
    assert sharded.shard(0).service("R0").cells[1] == b""


def test_abandoned_coordinator_decision_still_lands():
    """abandon_txn() retransmits whatever decision the coordinator reached, so
    participants converge even though the coordinating client walked away."""
    sharded = _sharded()
    client = sharded.client("C0")
    box = []
    client.invoke_txn_async([(1, b"v"), (9, b"v")], box.append)
    # Abandon while the prepares are still in flight: no decision was
    # reached, so the retransmitted decision must be the safe abort —
    # participants that already ordered a prepare unlock, and participants
    # that order it late hit the tombstone and never lock at all.
    client.abandon_txn()
    sharded.settle(2.0)
    for shard in range(2):
        for rid in ("R0", "R1", "R2", "R3"):
            participant = sharded.shard(shard).service(rid).participant
            assert participant.decisions.get("C0:1") is False
            assert not participant.locked(1)
    assert box == []  # the abandoned callback never fires
    assert sharded.total_counters().get("txns_abandoned") == 1
    # Nothing leaked: the same slots are immediately usable again.
    assert client.invoke_txn([(1, b"after"), (9, b"after")]) is True


def test_deployment_is_deterministic():
    def run():
        sharded = _sharded()
        client = sharded.client("C0")
        for i in range(6):
            client.invoke(encode_set(i, bytes([i])))
        client.invoke_txn([(2, b"t"), (10, b"t")])
        sharded.settle(1.0)
        return sharded.sim.events_processed, sharded.total_counters().snapshot()

    assert run() == run()
