"""View changes: liveness across primary failures (E13)."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.testing import encode_get, encode_set

from tests.conftest import assert_converged, kv_cluster


def test_primary_crash_triggers_view_change():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"before"))
    cluster.crash("R0")
    assert client.invoke(encode_set(1, b"after"), timeout=30) == b"OK"
    live_views = {r.view for r in cluster.replicas if r.node_id != "R0"}
    assert live_views == {1}


def test_no_request_lost_across_view_change():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"before"))
    cluster.crash("R0")
    client.invoke(encode_set(1, b"after"), timeout=30)
    assert client.invoke(encode_get(0), timeout=30) == b"before"
    assert client.invoke(encode_get(1), timeout=30) == b"after"


def test_service_continues_after_view_change():
    cluster = kv_cluster()
    client = cluster.client("C0")
    cluster.crash("R0")
    for i in range(20):
        assert client.invoke(encode_set(i % 4, bytes([i])), timeout=30) == b"OK"
    cluster.settle()
    live = [r for r in cluster.replicas if r.node_id != "R0"]
    assert len({r.last_executed for r in live}) == 1


def test_two_consecutive_primary_crashes():
    """Crash R0 then R1: the system must reach view 2 and stay live (f=1 at a
    time; R0 is restored before R1 fails)."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    cluster.crash("R0")
    client.invoke(encode_set(0, b"v1"), timeout=30)
    cluster.restart("R0")
    cluster.settle(2.0)
    cluster.crash("R1")
    assert client.invoke(encode_set(1, b"v2"), timeout=60) == b"OK"
    live_views = {r.view for r in cluster.replicas if r.node_id != "R1"}
    assert min(live_views) >= 2


def test_crashed_primary_rejoins_and_catches_up():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"x"))
    cluster.crash("R0")
    for i in range(20):
        client.invoke(encode_set(i % 4, bytes([i])), timeout=30)
    cluster.restart("R0")
    for i in range(20):
        client.invoke(encode_set((i + 1) % 4, bytes([i])), timeout=30)
    cluster.settle(3.0)
    assert_converged(cluster)
    assert cluster.replica("R0").last_executed == cluster.replica("R1").last_executed


def test_view_change_preserves_prepared_requests():
    """A request that prepared in the old view must execute in the new one
    (the new-view O-set re-proposes it)."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"seed"))

    # Cut the primary off from the client (and from commits) mid-protocol by
    # crashing it right after it can send pre-prepares.
    done = []
    client.invoke_async(encode_set(1, b"prepared?"), done.append)
    cluster.sim.run_for(0.003)  # enough for pre-prepare + prepares to spread
    cluster.crash("R0")
    cluster.sim.run_until_condition(lambda: bool(done), timeout=30)
    assert client.invoke(encode_get(1), timeout=30) == b"prepared?"


def test_view_changes_counted():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"x"))
    cluster.crash("R0")
    client.invoke(encode_set(1, b"y"), timeout=30)
    started = sum(r.counters.get("view_changes_started") for r in cluster.replicas)
    completed = sum(r.counters.get("view_changes_completed") for r in cluster.replicas)
    assert started >= 3
    assert completed >= 3
