"""Fused-backup tier end to end: parity bootstrap and currency, catastrophic
group loss and certified reconstruction, storage accounting, and the
cluster-wide repair summary.

The destroy here is the real thing — every replica of the victim group is
stopped, cut off, and has its disk wiped in place — so nothing short of the
fused tier's cross-group parity can bring the shard back.
"""

import pytest

from repro.bft.fusion import DEFAULT_SLOT_WIDTH, FusedBackupTier
from repro.bft.sharding import sharded_kv_cluster
from repro.bft.testing import encode_get, encode_set

NUM_SHARDS = 4


def _cluster_with_tier(seed=7, num_shards=NUM_SHARDS):
    sharded = sharded_kv_cluster(num_shards, seed=seed)
    tier = FusedBackupTier(sharded)
    tier.attach()
    sharded.settle(1.0)
    assert tier.ready()
    return sharded, tier


def _write_past_checkpoints(sharded, count=160):
    """Spread ``count`` writes so every shard passes two stable checkpoints
    (checkpoint_interval=16, four shards: 40 seqnos each)."""
    client = sharded.client("C0")
    for i in range(count):
        shard = i % NUM_SHARDS
        key = shard * 16 + (i % 16)
        assert client.invoke(encode_set(key, b"v%d" % i)) == b"OK"
    sharded.settle(2.0)
    return client


def test_parity_tracks_stable_checkpoints():
    sharded, tier = _cluster_with_tier()
    _write_past_checkpoints(sharded)
    node = tier.nodes[0]
    # 160 writes over 4 shards = 40 seqnos each; the last stable checkpoint
    # boundary below that is 32.
    assert dict(sorted(node.applied.items())) == {0: 32, 1: 32, 2: 32, 3: 32}
    totals = tier.total_counters()
    assert totals.get("fusion_updates_applied") >= 2 * NUM_SHARDS
    assert totals.get("fusion_bootstraps") == 1


def test_reconstruction_restores_the_certified_state():
    sharded, tier = _cluster_with_tier()
    client = _write_past_checkpoints(sharded)
    # Pad shard 1 from 40 executed seqnos up to the checkpoint boundary at
    # 48, so the wipe happens with zero un-checkpointed suffix (RPO = 0) and
    # the rebuilt state equals the last acknowledged state byte for byte.
    for _ in range(8):
        assert client.invoke(encode_set(31, b"pad")) == b"OK"
    sharded.settle(2.0)
    assert sharded.sim.run_until_condition(
        lambda: tier.nodes[0].applied.get(1) == 48, timeout=20.0
    )
    before = client.invoke(encode_get(17))

    sharded.destroy_group(1)
    assert sharded.sim.run_until_condition(tier.idle, timeout=60.0)

    episodes = tier.reconstructions
    assert len(episodes) == 1
    record = episodes[0]
    assert record.ok is True
    assert record.shard == 1
    assert record.target_seqno == 48
    assert record.blocks_fetched == NUM_SHARDS - 1
    assert record.mttr is not None and record.mttr > 0.0

    # Every rebuilt replica verified against the group's latest checkpoint
    # certificate before resuming.
    cert = tier.nodes[0].certs[1]
    assert cert.seqno == 48
    cluster = sharded.shard(1)
    for rid in cluster.config.replica_ids:
        replica = cluster.hosts[rid].replica
        assert replica.stable_seqno == 48
        assert replica.service.manager.tree.root()[1] == cert.state_digest

    # The service resumed and serves the exact pre-destroy value.
    sharded.settle(1.0)
    assert client.invoke(encode_get(17), timeout=20.0) == before

    # And it is a full group again: new writes commit on the rebuilt shard.
    assert client.invoke(encode_set(17, b"after"), timeout=20.0) == b"OK"
    assert client.invoke(encode_get(17)) == b"after"


def test_reconstruction_is_deterministic():
    outcomes = []
    for _ in range(2):
        sharded, tier = _cluster_with_tier(seed=11)
        _write_past_checkpoints(sharded)
        sharded.destroy_group(2)
        assert sharded.sim.run_until_condition(tier.idle, timeout=60.0)
        record = tier.reconstructions[0]
        outcomes.append(
            (
                record.ok,
                record.target_seqno,
                record.blocks_fetched,
                record.bytes_fetched,
                record.mttr,
                sorted(tier.total_counters().snapshot().items()),
            )
        )
    assert outcomes[0] == outcomes[1]


def test_fused_tier_costs_less_than_half_a_replica_per_group():
    """The point of fusion: one parity node spanning S groups costs ~1/S of
    what one extra full replica per group would, and never more than half.

    Measured with realistically-sized objects (near the parity slot width);
    toy byte-sized values would make the fixed per-cell padding dominate and
    say nothing about the regime the tier is built for."""
    sharded = sharded_kv_cluster(NUM_SHARDS, seed=7, objects_per_shard=32)
    tier = FusedBackupTier(sharded)
    tier.attach()
    sharded.settle(1.0)
    client = sharded.client("C0")
    value = bytes(range(84)[:84])  # fills most of the 96-byte parity slot
    for shard in range(NUM_SHARDS):
        for slot in range(32):
            assert client.invoke(encode_set(shard * 32 + slot, value)) == b"OK"
    sharded.settle(2.0)
    assert all(s > 0 for s in tier.nodes[0].applied.values())
    fused = tier.storage_bytes()
    full_replicas = tier.abstract_state_bytes()
    assert fused > 0
    assert fused <= 0.5 * full_replicas


def test_repair_status_aggregates_reconstructions():
    sharded, tier = _cluster_with_tier()
    _write_past_checkpoints(sharded)
    sharded.destroy_group(3)
    assert sharded.sim.run_until_condition(tier.idle, timeout=60.0)

    status = sharded.repair_status()
    assert set(status) == {f"shard{i}" for i in range(NUM_SHARDS)} | {
        "reconstructions"
    }
    recon = status["reconstructions"]
    assert len(recon["episodes"]) == 1
    episode = recon["episodes"][0]
    assert episode["shard"] == 3
    assert episode["ok"] is True
    assert recon["mttr"] == pytest.approx(episode["mttr"])


def test_destroy_without_tier_raises():
    sharded = sharded_kv_cluster(2, seed=1)
    sharded.settle(0.2)
    # Without a fused tier the wipe is unrecoverable; destroy still works
    # (the caller may want to demonstrate exactly that) ...
    sharded.destroy_group(0)
    assert sharded.repair_status().get("reconstructions") is None


def test_tier_requires_at_least_two_shards():
    from repro.bft.fusion import FusionError

    sharded = sharded_kv_cluster(1, seed=1)
    with pytest.raises(FusionError):
        FusedBackupTier(sharded)


def test_feeder_survives_proactive_reboot():
    """Recovery swaps the replica object; the relinked feeder must keep
    feeding parity updates afterwards."""
    sharded, tier = _cluster_with_tier(seed=5)
    _write_past_checkpoints(sharded, count=80)
    cluster = sharded.shard(0)
    cluster.hosts["R1"].recover_now()
    sharded.settle(2.0)
    assert cluster.hosts["R1"].replica.fusion_feeder is not None
    before = tier.nodes[0].applied[0]
    _write_past_checkpoints(sharded, count=160)
    assert tier.nodes[0].applied[0] > before


def test_slot_width_overflow_stalls_loudly():
    """A value too large for the parity cell must not silently corrupt the
    stripe: the feeder refuses to emit the update and counts the stall."""
    sharded = sharded_kv_cluster(2, seed=3)
    tier = FusedBackupTier(sharded, slot_width=DEFAULT_SLOT_WIDTH)
    tier.attach()
    sharded.settle(1.0)
    client = sharded.client("C0")
    # The oversized value must still be live at a checkpoint boundary, so
    # park it in a slot the later writes never touch.
    assert client.invoke(encode_set(7, b"x" * (DEFAULT_SLOT_WIDTH * 2))) == b"OK"
    for i in range(40):
        client.invoke(encode_set(i % 7, b"small"))
    sharded.settle(2.0)
    # Feeder counters live on the replicas; the sharded roll-up sees them.
    totals = sharded.total_counters()
    assert totals.get("fusion_feed_overflow") > 0
    assert tier.nodes[0].applied.get(0, 0) == 0  # coverage stalled, loudly
