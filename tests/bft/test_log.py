"""Message log certificates: prepared, committed-local, proofs, GC."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.log import MessageLog
from repro.bft.messages import Commit, Prepare, PrePrepare, Request


@pytest.fixture
def log():
    return MessageLog(BFTConfig())


def make_pre_prepare(view=0, seqno=1):
    request = Request(client_id="C0", reqid=1, op=b"op")
    return PrePrepare(view=view, seqno=seqno, requests=[request], nondet=b"", primary_id="R0")


def add_prepares(slot, digest, senders):
    for sender in senders:
        slot.prepares[sender] = Prepare(
            view=slot.view, seqno=slot.seqno, digest=digest, replica_id=sender
        )


def add_commits(slot, digest, senders):
    for sender in senders:
        slot.commits[sender] = Commit(
            view=slot.view, seqno=slot.seqno, digest=digest, replica_id=sender
        )


def test_not_prepared_without_pre_prepare(log):
    slot = log.slot(0, 1)
    add_prepares(slot, b"\x00" * 32, ["R1", "R2"])
    assert not log.prepared(slot, "R1")


def test_prepared_needs_2f_backup_prepares(log):
    slot = log.slot(0, 1)
    pp = make_pre_prepare()
    slot.pre_prepare = pp
    digest = pp.batch_digest()
    add_prepares(slot, digest, ["R1"])
    assert not log.prepared(slot, "R1")
    add_prepares(slot, digest, ["R2"])
    assert log.prepared(slot, "R1")


def test_primary_prepares_do_not_count(log):
    slot = log.slot(0, 1)
    pp = make_pre_prepare()
    slot.pre_prepare = pp
    add_prepares(slot, pp.batch_digest(), ["R0", "R1"])  # R0 is the primary
    assert not log.prepared(slot, "R1")


def test_mismatched_digest_prepares_do_not_count(log):
    slot = log.slot(0, 1)
    pp = make_pre_prepare()
    slot.pre_prepare = pp
    add_prepares(slot, b"\xff" * 32, ["R1", "R2", "R3"])
    assert not log.prepared(slot, "R1")


def test_committed_local_needs_quorum_commits(log):
    slot = log.slot(0, 1)
    pp = make_pre_prepare()
    slot.pre_prepare = pp
    digest = pp.batch_digest()
    add_prepares(slot, digest, ["R1", "R2"])
    add_commits(slot, digest, ["R0", "R1"])
    assert not log.committed_local(slot, "R1")
    add_commits(slot, digest, ["R2"])
    assert log.committed_local(slot, "R1")


def test_prepared_proof_materializes_2f_prepares(log):
    slot = log.slot(0, 1)
    pp = make_pre_prepare()
    slot.pre_prepare = pp
    digest = pp.batch_digest()
    add_prepares(slot, digest, ["R1", "R2", "R3"])
    proof = log.prepared_proof(slot)
    assert proof is not None
    assert len(proof.prepares) == 2
    assert proof.digest() == digest


def test_prepared_proof_absent_without_quorum(log):
    slot = log.slot(0, 1)
    slot.pre_prepare = make_pre_prepare()
    assert log.prepared_proof(slot) is None


def test_best_prepared_proof_prefers_higher_view(log):
    for view in (0, 2):
        slot = log.slot(view, 5)
        pp = make_pre_prepare(view=view, seqno=5)
        pp.primary_id = f"R{view % 4}"
        slot.pre_prepare = pp
        others = [r for r in ("R0", "R1", "R2", "R3") if r != pp.primary_id]
        add_prepares(slot, pp.batch_digest(), others[:2])
    proof = log.best_prepared_proof(5, "R3")
    assert proof is not None
    assert proof.view() == 2


def test_collect_below_drops_old_slots(log):
    for seqno in (1, 2, 3):
        log.slot(0, seqno)
    log.collect_below(2)
    assert log.get(0, 1) is None
    assert log.get(0, 2) is None
    assert log.get(0, 3) is not None


def test_max_seqno(log):
    log.slot(0, 3)
    log.slot(1, 7)
    assert log.max_seqno() == 7
