"""The replicated client table (at-most-once state) in the state manager."""

import pytest

from repro.base.statemgr import (
    AbstractStateManager,
    decode_client_shard,
    encode_client_shard,
)


class Store:
    def __init__(self, n):
        self.cells = [b""] * n

    def get(self, index):
        return self.cells[index]


@pytest.fixture
def mgr():
    return AbstractStateManager(8, Store(8).get, arity=4, client_shards=2)


def test_shard_encoding_roundtrip():
    entries = {"C0": (5, b"reply"), "C1": (9, b"")}
    assert decode_client_shard(encode_client_shard(entries)) == entries


def test_shard_encoding_canonical_order():
    a = encode_client_shard({"B": (1, b"x"), "A": (2, b"y")})
    b = encode_client_shard({"A": (2, b"y"), "B": (1, b"x")})
    assert a == b


def test_record_and_lookup(mgr):
    assert mgr.last_recorded("C0") is None
    mgr.record_reply("C0", 3, b"result")
    assert mgr.last_recorded("C0") == (3, b"result")
    mgr.record_reply("C0", 4, b"newer")
    assert mgr.last_recorded("C0") == (4, b"newer")


def test_record_changes_root_digest(mgr):
    before = mgr.tree.root()[1]
    mgr.record_reply("C0", 1, b"r")
    mgr.take_checkpoint(10)
    assert mgr.tree.root()[1] != before


def test_client_table_checkpointed(mgr):
    mgr.record_reply("C0", 1, b"old")
    mgr.take_checkpoint(10)
    mgr.record_reply("C0", 2, b"new")
    shard_index = mgr._shard_of("C0")
    frozen = mgr.get_object_at(10, shard_index)
    assert decode_client_shard(frozen)["C0"] == (1, b"old")


def test_client_table_transfers():
    """A fetcher installing shard leaves recovers the dedup table."""
    donor_store = Store(8)
    donor = AbstractStateManager(8, donor_store.get, arity=4, client_shards=2)
    donor.record_reply("C0", 7, b"answer")
    donor.take_checkpoint(10)

    fetcher_store = Store(8)
    fetcher = AbstractStateManager(8, fetcher_store.get, arity=4, client_shards=2)
    applied = {}

    # Fetch every leaf that differs (here: just the client shard).
    objects = {}
    for index in range(fetcher.total_leaves):
        donor_value = donor.get_object_at(10, index)
        lm = donor.tree.leaf(index)[0]
        if donor_value != fetcher._get_obj(index):
            objects[index] = (donor_value, lm)
    root = fetcher.install_fetched(objects, 10, applied.update)

    assert root == donor.root_digest(10)
    assert fetcher.last_recorded("C0") == (7, b"answer")
    assert applied == {}  # shard installs never reach the service upcall


def test_sharding_is_stable_across_instances():
    a = AbstractStateManager(8, Store(8).get, arity=4, client_shards=4)
    b = AbstractStateManager(8, Store(8).get, arity=4, client_shards=4)
    for client in ("C0", "relay-77", "x"):
        assert a._shard_of(client) == b._shard_of(client)


def test_genesis_includes_empty_shards():
    from repro.base.statemgr import genesis_root_digest

    mgr = AbstractStateManager(8, Store(8).get, arity=4, client_shards=2)
    genesis = genesis_root_digest(8, lambda i: b"", arity=4, client_shards=2)
    assert mgr.tree.root()[1] == genesis
