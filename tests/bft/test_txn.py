"""Cross-shard transaction layer: wire encoding, participant semantics
(votes, locks, tombstones, idempotence), and durable participant state."""

import pytest

from repro.bft.messages import TxnDecide, TxnPrepare
from repro.bft.testing import KVStateMachine, encode_set
from repro.bft.txn import (
    TXN_ABORTED,
    TXN_BAD_CERT,
    TXN_COMMITTED,
    VOTE_ABORT,
    VOTE_COMMIT,
    TxnParticipant,
    decode_txn_op,
    encode_txn_decide,
    encode_txn_prepare,
    is_txn_op,
)


# -- wire encoding -------------------------------------------------------------


def test_prepare_round_trips_through_op_bytes():
    op = encode_txn_prepare("C0:7", [(2, b"x"), (0, b"y")])
    assert is_txn_op(op)
    message = decode_txn_op(op)
    assert isinstance(message, TxnPrepare)
    assert message.txid == "C0:7"
    assert message.writes == [(2, b"x"), (0, b"y")]


def test_decide_round_trips_through_op_bytes():
    for commit in (True, False):
        message = decode_txn_op(encode_txn_decide("C0:7", commit))
        assert isinstance(message, TxnDecide)
        assert message.txid == "C0:7" and message.commit is commit


def test_non_txn_ops_are_not_decoded():
    assert decode_txn_op(encode_set(0, b"v")) is None
    assert not is_txn_op(encode_set(0, b"v"))


def test_trailing_garbage_is_not_a_txn_op():
    assert decode_txn_op(encode_txn_decide("t", True) + b"junk") is None


# -- participant semantics -----------------------------------------------------


def _service():
    """Transactional KV with 4 data slots; slot 4 is the participant table."""
    return KVStateMachine(num_slots=5, disk={}, transactional=True)


def _prepare(service, txid, writes, read_only=False):
    return service.execute(
        encode_txn_prepare(txid, writes), client_id="C0", nondet=b"", read_only=read_only
    )


def _decide(service, txid, commit, votes=None):
    # Commit decides must carry the per-shard vote certificate (f+1 ids per
    # participant shard); default to a well-formed one for this service's
    # weak quorum of 2.  Aborts need none.
    if votes is None and commit:
        votes = [(0, ["R0", "R1"])]
    return service.execute(
        encode_txn_decide(txid, commit, votes),
        client_id="C0",
        nondet=b"",
        read_only=False,
    )


def test_commit_applies_writes_and_releases_locks():
    service = _service()
    assert _prepare(service, "t1", [(1, b"a"), (3, b"b")]) == VOTE_COMMIT
    assert service.participant.locked(1) and service.participant.locked(3)
    assert service.cells[1] == b""  # nothing visible until the decision
    assert _decide(service, "t1", True) == TXN_COMMITTED
    assert service.cells[1] == b"a" and service.cells[3] == b"b"
    assert service.disk[1] == b"a"  # write-through, like any mutation
    assert not service.participant.locked(1)
    assert service.participant.decisions == {"t1": True}


def test_abort_discards_writes():
    service = _service()
    _prepare(service, "t1", [(1, b"a")])
    assert _decide(service, "t1", False) == TXN_ABORTED
    assert service.cells[1] == b""
    assert not service.participant.locked(1)
    assert service.participant.decisions == {"t1": False}


def test_out_of_range_write_votes_abort():
    service = _service()
    # Slot 4 is the reserved participant table; slot 9 does not exist.
    assert _prepare(service, "t1", [(4, b"a")]) == VOTE_ABORT
    assert _prepare(service, "t2", [(9, b"a")]) == VOTE_ABORT
    # An abort vote locks nothing.
    assert not service.participant.locked(4)


def test_conflicting_prepare_votes_abort():
    service = _service()
    assert _prepare(service, "t1", [(1, b"a")]) == VOTE_COMMIT
    assert _prepare(service, "t2", [(1, b"b")]) == VOTE_ABORT
    assert service.participant.counters.get("txn_lock_conflicts") == 1
    # t2's abort decision must not release t1's lock.
    _decide(service, "t2", False)
    assert service.participant.locked(1)
    assert _decide(service, "t1", True) == TXN_COMMITTED
    assert service.cells[1] == b"a"


def test_prepare_and_decide_are_idempotent():
    service = _service()
    assert _prepare(service, "t1", [(1, b"a")]) == VOTE_COMMIT
    assert _prepare(service, "t1", [(1, b"a")]) == VOTE_COMMIT
    assert _decide(service, "t1", True) == TXN_COMMITTED
    before = service.cells[1]
    assert _decide(service, "t1", True) == TXN_COMMITTED
    assert _decide(service, "t1", False) == TXN_COMMITTED  # outcome is sticky
    assert service.cells[1] == before
    assert service.participant.counters.get("txn_decides_stale") == 2


def test_decide_before_prepare_leaves_a_tombstone():
    """An abandoned coordinator's retransmitted decision can arrive before the
    prepare it belongs to ever does; the late prepare must vote the decided
    way and take no locks (nothing will ever clean them up)."""
    service = _service()
    assert _decide(service, "ghost", False) == TXN_ABORTED
    assert _prepare(service, "ghost", [(1, b"a")]) == VOTE_ABORT
    assert not service.participant.locked(1)
    assert service.cells[1] == b""


def test_prepare_is_a_mutation():
    service = _service()
    assert b"ERR" in _prepare(service, "t1", [(1, b"a")], read_only=True)
    assert not service.participant.locked(1)


def test_locked_slot_rejects_direct_writes():
    service = _service()
    _prepare(service, "t1", [(1, b"a")])
    result = service.execute(
        encode_set(1, b"direct"), client_id="C1", nondet=b"", read_only=False
    )
    assert result == b"ERR locked"
    # Unlocked slots stay writable throughout.
    assert service.execute(
        encode_set(2, b"ok"), client_id="C1", nondet=b"", read_only=False
    ) == b"OK"


def test_participant_state_survives_reload():
    """Pending votes, locks, and tombstones live in the reserved table cell —
    a replica rebuilt over the same disk (crash/reboot, state transfer)
    reconstructs the identical participant state."""
    service = _service()
    _prepare(service, "pending", [(1, b"a")])
    _prepare(service, "done", [(2, b"b")])
    _decide(service, "done", True)

    reborn = KVStateMachine(num_slots=5, disk=service.disk, transactional=True)
    assert reborn.participant.locked(1)
    assert not reborn.participant.locked(2)
    assert reborn.participant.decisions == {"done": True}
    # The reloaded pending prepare still resolves correctly.
    assert _decide(reborn, "pending", True) == TXN_COMMITTED
    assert reborn.cells[1] == b"a"


def test_table_cell_is_deterministic():
    a, b = _service(), _service()
    for service in (a, b):
        _prepare(service, "t2", [(2, b"y")])
        _prepare(service, "t1", [(1, b"x")])
        _decide(service, "t2", False)
    assert a.cells[4] == b.cells[4]
    assert a.manager.tree.root() == b.manager.tree.root()


def test_participant_requires_the_reserved_cell():
    with pytest.raises(ValueError):
        TxnParticipant(KVStateMachine(num_slots=1, disk={}), 0)


# -- vote-certificate verification (hardened decides) --------------------------


def test_decide_votes_round_trip_through_op_bytes():
    votes = [(0, ["R0", "R2"]), (3, ["R1", "R3"])]
    message = decode_txn_op(encode_txn_decide("C0:7", True, votes))
    assert isinstance(message, TxnDecide)
    assert message.votes == votes


def test_commit_without_certificate_is_rejected():
    """A forged commit decide carrying no f+1 vote certificate must not
    apply writes, must not release locks, and must not settle the outcome —
    the real coordinator's (or a recovering one's) certified decide still
    lands afterwards."""
    service = _service()
    assert _prepare(service, "t1", [(1, b"a")]) == VOTE_COMMIT
    assert _decide(service, "t1", True, votes=[]) == TXN_BAD_CERT
    assert service.cells[1] == b""
    assert service.participant.locked(1)
    assert service.participant.decisions == {}
    assert service.participant.counters.get("txn_decides_rejected") == 1
    # The certified decide settles normally afterwards.
    assert _decide(service, "t1", True) == TXN_COMMITTED
    assert service.cells[1] == b"a"


def test_commit_with_thin_certificate_is_rejected():
    """Every participant shard's entry needs f+1 *distinct* replica ids."""
    service = _service()
    _prepare(service, "t1", [(1, b"a")])
    assert _decide(service, "t1", True, votes=[(0, ["R0"])]) == TXN_BAD_CERT
    assert _decide(service, "t1", True, votes=[(0, ["R0", "R0"])]) == TXN_BAD_CERT
    assert _decide(service, "t1", True, votes=[(0, ["R0", ""])]) == TXN_BAD_CERT
    assert (
        _decide(service, "t1", True, votes=[(0, ["R0", "R1"]), (0, ["R2", "R3"])])
        == TXN_BAD_CERT
    )  # duplicate shard entries cannot widen a thin certificate
    assert service.participant.counters.get("txn_decides_rejected") == 4
    assert _decide(service, "t1", True) == TXN_COMMITTED


def test_abort_needs_no_certificate():
    """Aborts are safe to apply on any evidence — the status quo outcome —
    and abandoned-coordinator cleanup depends on certificate-free aborts."""
    service = _service()
    _prepare(service, "t1", [(1, b"a")])
    assert _decide(service, "t1", False, votes=[]) == TXN_ABORTED
    assert not service.participant.locked(1)
