"""BFT client behaviour: retries, quorums, read-only fallback, cancellation."""

import pytest

from repro.bft.client import InvocationTimeout
from repro.bft.config import BFTConfig
from repro.bft.messages import Reply
from repro.bft.testing import encode_get, encode_set, kv_cluster
from repro.util.errors import ProtocolError


def test_result_needs_weak_quorum_of_matching_replies():
    """A single lying replica cannot convince the client."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"true"))

    # Intercept replies from R1 to the client and corrupt them.
    def corrupt(src, dst, message):
        if src == "R1" and dst == "C0" and isinstance(message, Reply):
            return Reply(
                view=message.view,
                reqid=message.reqid,
                client_id=message.client_id,
                replica_id=message.replica_id,
                result=b"LIES",
                read_only=message.read_only,
                auth=message.auth,
            )
        return message

    cluster.network.add_interceptor(corrupt)
    assert client.invoke(encode_get(0)) == b"true"


def test_forged_reply_auth_rejected():
    """A reply whose MAC does not verify is ignored entirely."""
    cluster = kv_cluster()
    client = cluster.client("C0")

    def forge(src, dst, message):
        if src == "R1" and dst == "C0" and isinstance(message, Reply):
            message = Reply(
                view=message.view,
                reqid=message.reqid,
                client_id=message.client_id,
                replica_id=message.replica_id,
                result=b"FORGED",
                auth=None,
            )
        return message

    cluster.network.add_interceptor(forge)
    assert client.invoke(encode_set(0, b"v")) == b"OK"
    assert client.counters.get("replies_accepted") >= 1


def test_retransmission_on_lost_request():
    cluster = kv_cluster(seed=2)

    # Drop the client's first transmission entirely.
    dropped = {"count": 0}

    def drop_first(src, dst, message):
        from repro.bft.messages import Request

        if src == "C0" and isinstance(message, Request) and dropped["count"] < 4:
            dropped["count"] += 1
            return None
        return message

    remove = cluster.network.add_interceptor(drop_first)
    client = cluster.client("C0")
    assert client.invoke(encode_set(0, b"v"), timeout=30) == b"OK"
    assert client.counters.get("request_retransmissions") >= 1
    remove()


def test_read_only_fallback_on_quorum_failure():
    """Read-only needs 2f+1 matching; with two replicas down it cannot get
    them and must fall back to an ordered request — which also stalls here
    (only 2 alive), so after restoring one replica the fallback completes."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"v"))
    cluster.crash("R3")
    cluster.crash("R2")

    box = []
    client.invoke_async(encode_get(0), box.append, read_only=True)
    cluster.sim.run_for(1.0)
    assert not box  # neither path can complete with 2 alive
    assert client.counters.get("read_only_fallbacks") == 1
    cluster.restart("R2")
    cluster.sim.run_until_condition(lambda: bool(box), timeout=60)
    assert box == [b"v"]


def test_read_only_succeeds_with_one_crash():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke(encode_set(0, b"v"))
    cluster.crash("R3")
    assert client.invoke(encode_get(0), read_only=True, timeout=30) == b"v"


def test_one_outstanding_invocation_enforced():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke_async(encode_set(0, b"a"), lambda r: None)
    with pytest.raises(ProtocolError):
        client.invoke_async(encode_set(0, b"b"), lambda r: None)


def test_cancel_allows_next_invocation():
    cluster = kv_cluster()
    client = cluster.client("C0")
    client.invoke_async(encode_set(0, b"a"), lambda r: None)
    client.cancel()
    assert client.invoke(encode_set(1, b"b"), timeout=30) == b"OK"


def test_invoke_timeout_raises():
    cluster = kv_cluster()
    for rid in ("R1", "R2", "R3"):
        cluster.crash(rid)
    client = cluster.client("C0")
    with pytest.raises(InvocationTimeout):
        client.invoke(encode_set(0, b"x"), timeout=1.0)


def test_retry_backoff_doubles_and_caps():
    """Retransmission delays double from ``client_retry`` and cap at
    ``client_retry_max``: 0.15, 0.3, 0.6, 0.6, ... — six retries in three
    seconds, where fixed-interval retry would have fired nineteen times."""
    cluster = kv_cluster()
    for rid in ("R0", "R1", "R2", "R3"):
        cluster.crash(rid)
    client = cluster.client("C0")
    client.invoke_async(encode_set(0, b"x"), lambda r: None)
    cluster.sim.run_for(3.0)
    assert client.counters.get("request_retransmissions") == 6
    assert client.counters.get("retry_backoff_capped") >= 1
    client.cancel()


def test_retry_backoff_resets_per_invocation():
    """Backoff state belongs to the invocation: after one slow request, the
    next starts again from the initial delay."""
    cluster = kv_cluster()
    for rid in ("R0", "R1", "R2", "R3"):
        cluster.crash(rid)
    client = cluster.client("C0")
    client.invoke_async(encode_set(0, b"x"), lambda r: None)
    cluster.sim.run_for(3.0)
    client.cancel()
    retransmitted = client.counters.get("request_retransmissions")
    for rid in ("R0", "R1", "R2", "R3"):
        cluster.restart(rid)
    assert client.invoke(encode_set(0, b"y"), timeout=30) == b"OK"
    # A healthy invocation completes before its first (initial-delay) retry.
    assert client.counters.get("request_retransmissions") == retransmitted


def test_client_retry_cap_must_dominate_initial_delay():
    from repro.util.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        BFTConfig(client_retry=0.5, client_retry_max=0.2)


def test_reqids_strictly_increase():
    cluster = kv_cluster()
    client = cluster.client("C0")
    first = client.invoke_async(encode_set(0, b"a"), lambda r: None)
    client.cancel()
    second = client.invoke_async(encode_set(0, b"b"), lambda r: None)
    assert second == first + 1


def test_cancel_disarms_pending_retry_timer():
    """cancel() must kill the armed retransmission outright: a cancelled
    invocation never retransmits, even if the timer was already scheduled."""
    cluster = kv_cluster()
    for rid in ("R0", "R1", "R2", "R3"):
        cluster.crash(rid)
    client = cluster.client("C0")
    client.invoke_async(encode_set(0, b"x"), lambda r: None)
    client.cancel()
    assert client._retry_timer is None
    cluster.sim.run_for(5.0)
    assert not client.counters.get("request_retransmissions")


def test_busy_hint_stretches_pending_retry_later_only():
    """An authenticated Busy from the primary pushes the armed retry later
    (never sooner), clamped to at most twice the client's own cap."""
    from repro.bft.messages import Busy

    cluster = kv_cluster()
    client = cluster.client("C0")
    for rid in ("R0", "R1", "R2", "R3"):
        cluster.crash(rid)
    reqid = client.invoke_async(encode_set(0, b"x"), lambda r: None)
    before = client._retry_fire_at

    def busy_from(replica_id, micros):
        busy = Busy(
            view=0,
            reqid=reqid,
            client_id="C0",
            replica_id=replica_id,
            retry_after_micros=micros,
        )
        busy.auth = cluster.keys.make_authenticator(
            replica_id, ["C0"], busy.signable_bytes()
        )
        return busy

    client.on_message(busy_from("R0", 1_000_000), "R0")
    assert client.counters.get("busy_replies_received") == 1
    assert client.counters.get("retries_stretched_by_busy") == 1
    stretched = client._retry_fire_at
    assert stretched > before
    # Clamp: the server cannot park the client beyond 2x its own cap (plus
    # <= 25% deterministic jitter).
    ceiling = 2.0 * cluster.config.client_retry_max
    assert stretched - cluster.sim.now() <= ceiling * 1.25 + 1e-9
    # A second hint proposing an *earlier* fire time is ignored.
    client.on_message(busy_from("R0", 100_000), "R0")
    assert client._retry_fire_at == stretched
    client.cancel()


def test_busy_without_valid_auth_is_ignored():
    from repro.bft.messages import Busy

    cluster = kv_cluster()
    client = cluster.client("C0")
    for rid in ("R0", "R1", "R2", "R3"):
        cluster.crash(rid)
    reqid = client.invoke_async(encode_set(0, b"x"), lambda r: None)
    before = client._retry_fire_at
    forged = Busy(
        view=0,
        reqid=reqid,
        client_id="C0",
        replica_id="R0",
        retry_after_micros=10_000_000,
        auth=None,
    )
    client.on_message(forged, "R0")
    wrong_sender = Busy(
        view=0,
        reqid=reqid,
        client_id="C0",
        replica_id="R0",
        retry_after_micros=10_000_000,
    )
    # Authenticated by R1 but claiming to be R0: dropped on the sender check.
    wrong_sender.auth = cluster.keys.make_authenticator(
        "R1", ["C0"], wrong_sender.signable_bytes()
    )
    client.on_message(wrong_sender, "R0")
    bad_mac = Busy(
        view=0,
        reqid=reqid,
        client_id="C0",
        replica_id="R0",
        retry_after_micros=10_000_000,
    )
    # R0's keys but over different bytes: the MAC itself fails.
    bad_mac.auth = cluster.keys.make_authenticator("R0", ["C0"], b"other-bytes")
    client.on_message(bad_mac, "R0")
    assert not client.counters.get("busy_replies_received")
    assert client.counters.get("busy_bad_auth") == 1
    assert client._retry_fire_at == before
    client.cancel()


def test_busy_jitter_is_deterministic_and_bounded():
    """Shed clients de-synchronize via per-client jitter that is a pure
    function of (client, reqid, retries) — replayable, and at most 25%."""
    cluster = kv_cluster()
    client = cluster.client("C0")
    delays = [client._retry_jitter(reqid=5, retries=2, delay=1.0) for _ in range(3)]
    assert delays[0] == delays[1] == delays[2]
    assert 0.0 <= delays[0] <= 0.25
    other = cluster.client("C1")._retry_jitter(reqid=5, retries=2, delay=1.0)
    assert other != delays[0]  # different clients spread out
