"""A Byzantine primary proposing bogus non-deterministic values loses its
view; correct timestamps resume under the next primary (paper section 2.2's
agreement mechanism, adversarial case).

Uses the BASE file service, whose ``check_nondet`` actually validates the
primary's timestamp proposals (the KV test service deliberately ignores
non-determinism)."""

import pytest

from repro.bft.config import BFTConfig
from repro.bft.nondet import encode_timestamp
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import MemFS
from repro.nfs.relay import NFSDeployment


def deployment():
    return NFSDeployment(
        {
            rid: (lambda disk, i=i: MemFS(disk=disk, seed=60 + i))
            for i, rid in enumerate(["R0", "R1", "R2", "R3"])
        },
        num_objects=32,
        config=BFTConfig(checkpoint_interval=8, log_window=16),
    )


def test_backups_refuse_future_timestamps():
    dep = deployment()
    service = dep.cluster.service("R1")
    assert not service.check_nondet(encode_timestamp(10**15))
    assert not service.check_nondet(b"garbage")
    assert service.check_nondet(service.propose_nondet())


def test_backups_refuse_non_monotone_timestamps():
    dep = deployment()
    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/f", b"x")  # executions advance last-accepted
    dep.sim.run_for(0.5)
    service = dep.cluster.service("R1")
    assert not service.check_nondet(encode_timestamp(0))


def test_bogus_nondet_forces_view_change():
    dep = deployment()
    primary_service = dep.cluster.service("R0")
    primary_service.propose_nondet = lambda: encode_timestamp(10**15)  # type: ignore[method-assign]

    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/survived", b"yes")
    assert fs.read_file("/survived") == b"yes"
    views = {r.view for r in dep.cluster.replicas if r.node_id != "R0"}
    assert min(views) >= 1
    refused = sum(
        r.counters.get("pre_prepare_bad_nondet") for r in dep.cluster.replicas
    )
    assert refused >= 1


def test_correct_replicas_converge_despite_nondet_attack():
    dep = deployment()
    dep.cluster.service("R0").propose_nondet = lambda: b"garbage"  # type: ignore[method-assign]
    fs = NFSClient(dep.relay("C0"))
    for i in range(6):
        fs.write_file(f"/f{i}", bytes([i]) * 10)
    dep.sim.run_for(1.0)
    roots = {
        rid: dep.cluster.service(rid).current_node(0, 0)[1]
        for rid in dep.cluster.hosts
        if rid != "R0"
    }
    assert len(set(roots.values())) == 1
    # Timestamps of executed operations are still strictly monotone.
    stamps = [fs.stat(f"/f{i}").mtime for i in range(6)]
    assert stamps == sorted(stamps)
