"""Golden wire-format and checkpoint-digest pins.

Every constant in this file was captured from the implementation BEFORE the
encoding-cache / persistent-snapshot optimisations landed.  The caching layer
must be byte-for-byte behavior-neutral: if any of these assertions fires, the
wire format or the checkpoint digest format changed and every cross-version
deployment (and every recorded BENCH_* trajectory) silently broke.
"""

import hashlib

from repro.base.partition import PartitionTree
from repro.base.statemgr import genesis_root_digest
from repro.bft.messages import (
    Checkpoint,
    CheckpointCert,
    Commit,
    FetchMeta,
    FetchObject,
    FetchRoot,
    FusionBlock,
    FusionFetch,
    Lease,
    LeaseRevoke,
    MetaReply,
    NewView,
    ObjectReply,
    ParityAck,
    ParityUpdate,
    PrePrepare,
    Prepare,
    PreparedProof,
    Recovered,
    Recovering,
    Reply,
    Request,
    RetransmitCommitted,
    SpecReply,
    Status,
    TransferRoot,
    TxnDecide,
    ViewChange,
)
from repro.crypto.digest import digest

D1 = digest(b"golden-digest-1")
D2 = digest(b"golden-digest-2")


def golden_messages():
    """The fixed message instances the goldens were captured from."""
    req = Request(client_id="C1", reqid=7, op=b"\x01\x02payload", read_only=False)
    req2 = Request(client_id="C2", reqid=9, op=b"read-op", read_only=True)
    pp = PrePrepare(
        view=2,
        seqno=11,
        requests=[req, req2],
        nondet=b"\x00\x01\x02\x03",
        primary_id="R2",
        sig=b"s" * 32,
    )
    prep = Prepare(view=2, seqno=11, digest=D1, replica_id="R1", sig=b"p" * 32)
    com = Commit(view=2, seqno=11, digest=D1, replica_id="R3", sig=b"c" * 32)
    ckpt = Checkpoint(seqno=16, state_digest=D2, replica_id="R0", sig=b"k" * 32)
    proof = PreparedProof(pre_prepare=pp, prepares=[prep])
    vc = ViewChange(
        new_view=3,
        stable_seqno=16,
        checkpoint_proof=[ckpt],
        prepared=[proof],
        replica_id="R1",
        sig=b"v" * 32,
    )
    cert = CheckpointCert(seqno=16, state_digest=D2, proof=[ckpt])
    return {
        "request": req,
        "request_ro": req2,
        "reply": Reply(
            view=2, reqid=7, client_id="C1", replica_id="R1", result=b"ok", read_only=False
        ),
        "pre_prepare": pp,
        "prepare": prep,
        "commit": com,
        "checkpoint": ckpt,
        "view_change": vc,
        "new_view": NewView(
            view=3, view_changes=[vc], pre_prepares=[pp], primary_id="R3", sig=b"n" * 32
        ),
        "status": Status(
            replica_id="R2", view=2, stable_seqno=16, last_executed=18, in_view_change=False
        ),
        "checkpoint_cert": cert,
        "retransmit": RetransmitCommitted(replica_id="R0", entries=[(pp, [prep], [com])]),
        "fetch_root": FetchRoot(requester="R3", min_seqno=16),
        "transfer_root": TransferRoot(replica_id="R0", cert=cert),
        "fetch_meta": FetchMeta(requester="R3", level=1, index=2, min_seqno=16),
        "meta_reply": MetaReply(
            replica_id="R0", seqno=16, level=1, index=2, children=[(3, D1), (0, D2)]
        ),
        "fetch_object": FetchObject(requester="R3", index=5, min_seqno=16),
        "object_reply": ObjectReply(replica_id="R0", index=5, seqno=16, data=b"object-bytes"),
        "recovering": Recovering(replica_id="R2", epoch=1),
        "recovered": Recovered(replica_id="R2", epoch=1),
        # Fast-path messages (pinned when the RECIPE-style fast path landed;
        # everything above this line predates it and must stay byte-identical).
        "spec_reply": SpecReply(
            view=2, reqid=7, client_id="C1", replica_id="R1", result=b"ok"
        ),
        "lease": Lease(view=2, epoch=5, seqno=24, primary_id="R2"),
        "lease_revoke": LeaseRevoke(view=2, epoch=5, primary_id="R2"),
        # Fused-backup tier messages plus the hardened decide (pinned when
        # the fusion tier landed; ``cert`` rides outside the signable prefix
        # on parity_update/fusion_block by design — proof sets legitimately
        # differ per sender — but still counts toward wire size).
        "txn_decide": TxnDecide(
            txid="C1:7", commit=True, votes=[(0, ["R0", "R2"]), (1, ["R1", "R3"])]
        ),
        "parity_update": ParityUpdate(
            shard=1,
            base_seqno=16,
            seqno=32,
            slot_width=96,
            num_leaves=20,
            deltas=[(3, b"\x01\x02\x03\x04"), (7, b"\xff\x00")],
            cert=cert,
        ),
        "parity_ack": ParityAck(parity_id="F0", shard=1, seqno=32),
        "fusion_fetch": FusionFetch(parity_id="F0", shard=1, seqno=0, slot_width=96),
        "fusion_block": FusionBlock(
            replica_id="R2",
            shard=1,
            seqno=16,
            slot_width=96,
            num_leaves=20,
            block=b"fusion-block-bytes",
            cert=cert,
        ),
    }


SIGNABLE_HEX = {
    "request": "000000075245515545535400000000024331000000000000000000070000000901027061796c6f616400000000000000",
    "request_ro": "0000000752455155455354000000000243320000000000000000000900000007726561642d6f700000000001",
    "reply": "000000055245504c590000000000000000000002000000000000000700000002433100000000000252310000000000026f6b000000000000",
    "pre_prepare": "0000000b5052452d50524550415245000000000000000002000000000000000b9b0272ae6e391ff404e816f33ed75948333e7e6d8140953b4a5cdae9ff36ac2f0000000252320000",
    "prepare": "0000000750524550415245000000000000000002000000000000000bf85186ebd7fc0d59ea77986bfa8c5112c80d87b73f168f863ee122abfce764670000000252310000",
    "commit": "00000006434f4d4d495400000000000000000002000000000000000bf85186ebd7fc0d59ea77986bfa8c5112c80d87b73f168f863ee122abfce764670000000252330000",
    "checkpoint": "0000000a434845434b504f494e54000000000000000000104f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b60000000252300000",
    "view_change": "0000000b564945572d4348414e47450000000000000000030000000000000010000000025231000000000001000000400000000a434845434b504f494e54000000000000000000104f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b6000000025230000000000001000000480000000b5052452d50524550415245000000000000000002000000000000000b9b0272ae6e391ff404e816f33ed75948333e7e6d8140953b4a5cdae9ff36ac2f0000000252320000",
    "new_view": "000000084e45572d564945570000000000000003000000025233000000000001000000c00000000b564945572d4348414e47450000000000000000030000000000000010000000025231000000000001000000400000000a434845434b504f494e54000000000000000000104f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b6000000025230000000000001000000480000000b5052452d50524550415245000000000000000002000000000000000b9b0272ae6e391ff404e816f33ed75948333e7e6d8140953b4a5cdae9ff36ac2f000000025232000000000001000000480000000b5052452d50524550415245000000000000000002000000000000000b9b0272ae6e391ff404e816f33ed75948333e7e6d8140953b4a5cdae9ff36ac2f0000000252320000",
    "status": "000000065354415455530000000000025232000000000000000000020000000000000010000000000000001200000000",
    "checkpoint_cert": "0000000f434845434b504f494e542d434552540000000000000000104f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b600000001000000400000000a434845434b504f494e54000000000000000000104f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b60000000252300000",
    "retransmit": "0000000a52455452414e534d49540000000000025230000000000001000000480000000b5052452d50524550415245000000000000000002000000000000000b9b0272ae6e391ff404e816f33ed75948333e7e6d8140953b4a5cdae9ff36ac2f0000000252320000",
    "fetch_root": "0000000a46455443482d524f4f54000000000002523300000000000000000010",
    "transfer_root": "0000000d5452414e534645522d524f4f540000000000000252300000000000840000000f434845434b504f494e542d434552540000000000000000104f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b600000001000000400000000a434845434b504f494e54000000000000000000104f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b60000000252300000",
    "fetch_meta": "0000000a46455443482d4d455441000000000002523300000000000100000000000000020000000000000010",
    "meta_reply": "0000000a4d4554412d5245504c59000000000002523000000000000000000010000000010000000000000002000000020000000000000003f85186ebd7fc0d59ea77986bfa8c5112c80d87b73f168f863ee122abfce7646700000000000000004f3bfe01724e115a39f3cc70cff5c7a341d938ad8e821c0ea57df2411766d6b6",
    "fetch_object": "0000000c46455443482d4f424a454354000000025233000000000000000000050000000000000010",
    "object_reply": "0000000c4f424a4543542d5245504c590000000252300000000000000000000500000000000000100000000c6f626a6563742d6279746573",
    "recovering": "0000000a5245434f564552494e47000000000002523200000000000000000001",
    "recovered": "000000095245434f564552454400000000000002523200000000000000000001",
    "spec_reply": "0000000a535045432d5245504c5900000000000000000002000000000000000700000002433100000000000252310000000000026f6b0000",
    "lease": "000000054c454153450000000000000000000002000000000000000500000000000000180000000252320000",
    "lease_revoke": "0000000c4c454153452d5245564f4b45000000000000000200000000000000050000000252320000",
    "txn_decide": "0000000a54584e2d44454349444500000000000443313a370000000100000002000000000000000200000002523000000000000252320000000000010000000200000002523100000000000252330000",
    "parity_update": "0000000d5041524954592d55504441544500000000000001000000000000001000000000000000200000006000000014000000020000000300000004010203040000000700000002ff000000",
    "parity_ack": "0000000a5041524954592d41434b00000000000246300000000000010000000000000020",
    "fusion_fetch": "0000000c465553494f4e2d4645544348000000024630000000000001000000000000000000000060",
    "fusion_block": "0000000c465553494f4e2d424c4f434b0000000252320000000000010000000000000010000000600000001400000012667573696f6e2d626c6f636b2d62797465730000",
}

WIRE_SIZES = {
    "request": 48,
    "request_ro": 44,
    "reply": 56,
    "pre_prepare": 200,
    "prepare": 100,
    "commit": 100,
    "checkpoint": 96,
    "view_change": 524,
    "new_view": 1064,
    "status": 48,
    "checkpoint_cert": 164,
    "retransmit": 504,
    "fetch_root": 32,
    "transfer_root": 328,
    "fetch_meta": 44,
    "meta_reply": 128,
    "fetch_object": 40,
    "object_reply": 56,
    "recovering": 32,
    "recovered": 32,
    "spec_reply": 56,
    "lease": 44,
    "lease_revoke": 40,
    "txn_decide": 80,
    "parity_update": 240,
    "parity_ack": 36,
    "fusion_fetch": 40,
    "fusion_block": 232,
}

BATCH_DIGEST_HEX = "9b0272ae6e391ff404e816f33ed75948333e7e6d8140953b4a5cdae9ff36ac2f"
REQUEST_DIGEST_HEX = "74f8f2554e07b2ec8b3ab9409db45ec464354fdadc227f92a35d007989b1d58c"

# (num_objects, arity) -> (sha256 over the root-digest sequence of a fixed
# 2n-step update run, initial root, final root).
TREE_GOLDEN = {
    (1, 8): (
        "b8e2f54803502135c042e64414ece94f4bad4936d35f941152c27817b5428cb0",
        "4237f6898633ac00f28e402b55ae19dda173139a81d3148f38fbc6fb3014af71",
        "6e2392728df74e13242b86b832132b5518eec0420f7548e634a4cd575be4a7df",
    ),
    (7, 3): (
        "cd033d55570289db30add22a711116602fc17f16f2356a2933cd9517ce7348ec",
        "24304eb27e6638b54f43675b0f3ec4be862e68d925a7490b6511deebc7a620e5",
        "5d8dde9088438592176a22565211d60c867bea8f3041ad0db49f8ba46c87f9a6",
    ),
    (10, 4): (
        "492156284db0a48bb46cdedfb0143d255db9ced807720a87b2be1e7357b9898f",
        "313d1ac2c723ff888725d3b0c3cea38dc0996912d082268c74f27fa48050bacd",
        "6114b9985fe94e9de7ada17bcbe67e23d33704df2ca09d00ec847805f0d3b825",
    ),
    (16, 4): (
        "12ec308e50fc7ead2a7ba1c0353d2fa326d6394275eafd27929eac736497aecc",
        "dd9afb9af8f01f1b2437f5294647c32742c2de1b9fd9c30b99509bbdcf6eb092",
        "7009db168fb483e546edbcc926250d39617437e87de16d5cb51cdf1f80b76547",
    ),
    (64, 8): (
        "0b6316f04971faa8ce880dc3af036848be1af294b0047c9a283666e3a81cc018",
        "83d46717646609327044167a1456173fbc77a42e1bbe1a61d1a3d37d4f3ee171",
        "ca20dce8b196cb7f2561ddf07113a8c28a27aa20ab23036b63804fe586967535",
    ),
}

GENESIS_ROOT_KV8_HEX = "c92ef9c04722094c01efebf155ffb2dbe0ab9b4051aae58ce6e81c69d806a195"
GENESIS_ROOT_64_HEX = "dff76b98a80ae76f47f8d4097e8d54ada5c805f0468f9f395209a1398b824696"


def test_signable_bytes_golden():
    messages = golden_messages()
    assert set(messages) == set(SIGNABLE_HEX)
    for name, msg in messages.items():
        assert msg.signable_bytes().hex() == SIGNABLE_HEX[name], name


def test_wire_size_golden():
    messages = golden_messages()
    for name, msg in messages.items():
        assert msg.wire_size() == WIRE_SIZES[name], name


def test_wire_size_stable_on_repeated_calls():
    for name, msg in golden_messages().items():
        first = msg.wire_size()
        assert msg.wire_size() == first, name


def test_batch_and_request_digest_golden():
    messages = golden_messages()
    assert messages["pre_prepare"].batch_digest().hex() == BATCH_DIGEST_HEX
    assert messages["request"].digest().hex() == REQUEST_DIGEST_HEX


def test_partition_tree_roots_golden():
    for (num_objects, arity), (chain_hex, first_hex, last_hex) in TREE_GOLDEN.items():
        tree = PartitionTree(num_objects, arity=arity)
        roots = [tree.root()[1]]
        for step in range(2 * num_objects):
            index = (step * 7 + 3) % num_objects
            tree.update_leaf(index, digest(b"obj-%d-%d" % (index, step)), step + 1)
            roots.append(tree.root()[1])
        assert roots[0].hex() == first_hex, (num_objects, arity)
        assert roots[-1].hex() == last_hex, (num_objects, arity)
        chain = hashlib.sha256(b"".join(roots)).hexdigest()
        assert chain == chain_hex, (num_objects, arity)


def test_snapshot_roots_match_live_tree():
    tree = PartitionTree(10, arity=4)
    for step in range(20):
        index = (step * 7 + 3) % 10
        tree.update_leaf(index, digest(b"obj-%d-%d" % (index, step)), step + 1)
        snap = tree.snapshot()
        assert snap.root() == tree.root()
        assert snap.leaf(index) == tree.leaf(index)


def test_genesis_root_golden():
    assert genesis_root_digest(8, lambda i: b"", arity=4).hex() == GENESIS_ROOT_KV8_HEX
    assert (
        genesis_root_digest(64, lambda i: b"init-%d" % i, arity=8, client_shards=8).hex()
        == GENESIS_ROOT_64_HEX
    )
