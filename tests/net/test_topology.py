"""Declarative topologies: presets, compilation onto per-link configs,
client placement, and the campaign queries (boundaries, spike pairs)."""

import pytest

from repro.net.network import Network, NetworkConfig
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.topology import (
    PRESETS,
    WAN3,
    LinkSpec,
    PlacedTopology,
    Region,
    Topology,
    topology_preset,
)


def make_network(node_ids):
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delay=0.0005, jitter=0.0005))
    for node_id in node_ids:
        Node(node_id, sim, net)
    return net


def placed_wan3(clients=()):
    net = make_network(["R0", "R1", "R2", "R3", *clients])
    placed = PlacedTopology(WAN3, net)
    placed.compile()
    return net, placed


def test_presets_registered():
    assert set(PRESETS) == {"lan", "wan3", "geo5"}
    assert topology_preset("wan3") is WAN3
    with pytest.raises(KeyError):
        topology_preset("moon")


def test_duplicate_replica_placement_rejected():
    with pytest.raises(ValueError):
        Topology(
            name="bad",
            regions=(Region("a", ("R0",)), Region("b", ("R0",))),
            intra=LinkSpec(delay=0.001),
            default_inter=LinkSpec(delay=0.05),
        )


def test_compile_sets_intra_and_asymmetric_inter_links():
    net, _placed = placed_wan3()
    # Same region: the intra profile.
    assert net.link_config("R0", "R1").delay == pytest.approx(0.0005)
    # Cross-region, asymmetric trans-pacific pair.
    assert net.link_config("R0", "R3").delay == pytest.approx(0.085)
    assert net.link_config("R3", "R0").delay == pytest.approx(0.095)
    # Directions not listed use the directed override table symmetrically
    # declared in the preset.
    assert net.link_config("R0", "R2").delay == pytest.approx(0.038)
    assert net.link_config("R2", "R0").delay == pytest.approx(0.040)


def test_client_placement_round_robin_and_explicit():
    net, placed = placed_wan3(clients=["C0", "C1", "C2"])
    assert placed.place_client("C0") == "us-east"  # declaration order
    assert placed.place_client("C1") == "eu-west"
    assert placed.place_client("C2", "ap-south") == "ap-south"
    # Placing again is idempotent and keeps the original region.
    assert placed.place_client("C0") == "us-east"
    # Client links were compiled both ways.
    assert net.link_config("C1", "R0").delay == pytest.approx(0.040)
    assert net.link_config("R0", "C1").delay == pytest.approx(0.038)
    assert net.link_config("C0", "R0").delay == pytest.approx(0.0005)


def test_explicit_placement_validates_region():
    _net, placed = placed_wan3(clients=["C0"])
    with pytest.raises(KeyError):
        placed.place_client("C0", "nowhere")


def test_boundary_links_cover_placed_clients_both_directions():
    _net, placed = placed_wan3(clients=["C0"])
    placed.place_client("C0", "eu-west")
    links = placed.boundary_links("us-east", "eu-west")
    assert ("R0", "R2") in links and ("R2", "R0") in links
    assert ("R0", "C0") in links and ("C0", "R0") in links
    assert ("R0", "R1") not in links  # intra-region pair never crosses


def test_boundaries_skip_replica_free_regions():
    net = make_network(["R0", "R1", "R2", "R3"])
    placed = PlacedTopology(topology_preset("geo5"), net)
    placed.compile()
    names = {name for pair in placed.boundaries() for name in pair}
    assert "edge" not in names  # client-only region: storms have nothing to cut
    assert len(placed.boundaries()) == 6  # C(4, 2) populated region pairs


def test_spike_pairs_cross_boundary_only():
    _net, placed = placed_wan3()
    pairs = placed.spike_pairs()
    assert ("R0", "R1") not in pairs
    assert ("R0", "R2") in pairs and ("R2", "R0") in pairs
    scoped = placed.spike_pairs("ap-south")
    assert all("R3" in pair for pair in scoped)


def test_scaled_linkspec_inflates_latency_only():
    spec = LinkSpec(delay=0.04, jitter=0.004, drop_rate=0.01, bandwidth=100.0)
    spiked = spec.scaled(3.0)
    assert spiked.delay == pytest.approx(0.12)
    assert spiked.jitter == pytest.approx(0.012)
    assert spiked.drop_rate == spec.drop_rate
    assert spiked.bandwidth == spec.bandwidth
