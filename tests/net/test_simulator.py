"""Discrete-event simulator: ordering, cancellation, determinism."""

import pytest

from repro.net.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, lambda: fired.append("c"))
    sim.schedule(0.1, lambda: fired.append("a"))
    sim.schedule(0.2, lambda: fired.append("b"))
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for name in "abc":
        sim.schedule(1.0, lambda n=name: fired.append(n))
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now()))
    sim.run_until_idle()
    assert seen == [2.5]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(0.1, lambda: fired.append(1))
    handle.cancel()
    sim.run_until_idle()
    assert fired == []


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)


def test_run_until_stops_at_deadline():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.now() == 2.0
    sim.run_until_idle()
    assert fired == [1, 3]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.1, lambda: fired.append("inner"))

    sim.schedule(0.1, outer)
    sim.run_until_idle()
    assert fired == ["outer", "inner"]


def test_run_until_condition():
    sim = Simulator()
    box = []
    sim.schedule(0.5, lambda: box.append(1))
    assert sim.run_until_condition(lambda: bool(box), timeout=1.0)
    assert sim.now() <= 1.0


def test_run_until_condition_timeout():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.1, reschedule)

    sim.schedule(0.1, reschedule)
    assert not sim.run_until_condition(lambda: False, timeout=1.0)


def test_determinism_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        order = []
        for i in range(20):
            sim.schedule(sim.rng.random(), lambda i=i: order.append(i))
        sim.run_until_idle()
        return order

    assert run(7) == run(7)
    assert run(7) != run(8)


# -- cancelled-event compaction (heap growth regression) --------------------------


def test_cancelled_events_are_compacted_out_of_the_heap():
    """Cancel churn must not grow the heap without bound: once enough
    cancelled entries accumulate the queue compacts down to live events."""
    sim = Simulator()
    keeper = sim.schedule(1e6, lambda: None)
    for _ in range(50):
        handles = [sim.schedule(10.0, lambda: None) for _ in range(100)]
        for handle in handles:
            handle.cancel()
    assert sim.pending_events() == 1
    # 5000 cancelled handles went through; the heap must have been compacted
    # well below that (threshold is small), not retain every tombstone.
    assert len(sim._queue) < 200
    assert not keeper.cancelled


def test_compaction_preserves_order_and_behavior():
    sim = Simulator(seed=5)
    fired = []
    live = []
    for i in range(300):
        handle = sim.schedule(1.0 + i * 0.001, lambda i=i: fired.append(i))
        if i % 3 == 0:
            live.append(i)
        else:
            handle.cancel()
    sim.run_until_idle()
    assert fired == live


def test_pop_skips_cancelled_and_counts_stay_consistent():
    sim = Simulator()
    a = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    a.cancel()
    assert sim.pending_events() == 1
    sim.run_until_idle()
    assert sim.pending_events() == 0
    assert sim.events_processed == 1


# -- bounded tie-break shuffle ------------------------------------------------------


def test_tiebreak_shuffle_only_reorders_equal_times():
    import random as random_mod

    sim = Simulator()
    sim.set_tiebreak(random_mod.Random(3), window=4)
    fired = []
    for i in range(6):
        sim.schedule(1.0, lambda i=i: fired.append(("tie", i)))
    sim.schedule(2.0, lambda: fired.append(("late", 0)))
    sim.run_until_idle()
    # All tied events still run before the later one ...
    assert fired[-1] == ("late", 0)
    # ... and all of them run exactly once.
    assert sorted(fired[:-1]) == [("tie", i) for i in range(6)]


def test_tiebreak_shuffle_is_seed_deterministic():
    import random as random_mod

    def run(seed):
        sim = Simulator()
        sim.set_tiebreak(random_mod.Random(seed), window=4)
        fired = []
        for i in range(8):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run_until_idle()
        return fired

    assert run(9) == run(9)
    assert run(9) != list(range(8)) or run(10) != list(range(8))


def test_no_tiebreak_keeps_insertion_order():
    sim = Simulator()
    fired = []
    for i in range(8):
        sim.schedule(1.0, lambda i=i: fired.append(i))
    sim.run_until_idle()
    assert fired == list(range(8))
