"""Discrete-event simulator: ordering, cancellation, determinism."""

import pytest

from repro.net.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, lambda: fired.append("c"))
    sim.schedule(0.1, lambda: fired.append("a"))
    sim.schedule(0.2, lambda: fired.append("b"))
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for name in "abc":
        sim.schedule(1.0, lambda n=name: fired.append(n))
    sim.run_until_idle()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now()))
    sim.run_until_idle()
    assert seen == [2.5]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(0.1, lambda: fired.append(1))
    handle.cancel()
    sim.run_until_idle()
    assert fired == []


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)


def test_run_until_stops_at_deadline():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.now() == 2.0
    sim.run_until_idle()
    assert fired == [1, 3]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.1, lambda: fired.append("inner"))

    sim.schedule(0.1, outer)
    sim.run_until_idle()
    assert fired == ["outer", "inner"]


def test_run_until_condition():
    sim = Simulator()
    box = []
    sim.schedule(0.5, lambda: box.append(1))
    assert sim.run_until_condition(lambda: bool(box), timeout=1.0)
    assert sim.now() <= 1.0


def test_run_until_condition_timeout():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.1, reschedule)

    sim.schedule(0.1, reschedule)
    assert not sim.run_until_condition(lambda: False, timeout=1.0)


def test_determinism_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        order = []
        for i in range(20):
            sim.schedule(sim.rng.random(), lambda i=i: order.append(i))
        sim.run_until_idle()
        return order

    assert run(7) == run(7)
    assert run(7) != run(8)
