"""Simulated network: delivery, loss, partitions, interception, accounting."""

import pytest

from repro.net.network import Network, NetworkConfig
from repro.net.node import Node
from repro.net.simulator import Simulator


class Recorder(Node):
    def __init__(self, node_id, sim, network):
        super().__init__(node_id, sim, network)
        self.received = []

    def on_message(self, message, src):
        self.received.append((src, message))


@pytest.fixture
def rig():
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delay=0.001, jitter=0.0))
    nodes = {name: Recorder(name, sim, net) for name in ["A", "B", "C"]}
    return sim, net, nodes


def test_basic_delivery(rig):
    sim, net, nodes = rig
    nodes["A"].send("B", "hello")
    sim.run_until_idle()
    assert nodes["B"].received == [("A", "hello")]


def test_delivery_has_latency(rig):
    sim, net, nodes = rig
    nodes["A"].send("B", "x")
    assert nodes["B"].received == []  # not synchronous
    sim.run_until_idle()
    assert sim.now() >= 0.001


def test_multicast_excludes_sender(rig):
    sim, net, nodes = rig
    nodes["A"].multicast(["A", "B", "C"], "m")
    sim.run_until_idle()
    assert nodes["A"].received == []
    assert nodes["B"].received == [("A", "m")]
    assert nodes["C"].received == [("A", "m")]


def test_unknown_destination_raises(rig):
    _sim, net, nodes = rig
    with pytest.raises(KeyError):
        net.send("A", "nope", "m")


def test_duplicate_registration_rejected(rig):
    sim, net, _nodes = rig
    with pytest.raises(ValueError):
        Recorder("A", sim, net)


# -- link capacity model --------------------------------------------------------


class Sized:
    """A message with an explicit wire size."""

    def __init__(self, size):
        self.size = size

    def wire_size(self):
        return self.size


@pytest.fixture
def capped():
    sim = Simulator(seed=1)
    # 1000 bytes/vsec, no jitter: a 100-byte message serializes in 0.1s.
    net = Network(sim, NetworkConfig(delay=0.0, jitter=0.0, bandwidth=1000.0))
    nodes = {name: Recorder(name, sim, net) for name in ["A", "B", "C"]}
    return sim, net, nodes


def test_bandwidth_adds_serialization_delay(capped):
    sim, net, nodes = capped
    nodes["A"].send("B", Sized(100))
    sim.run_until_idle()
    assert sim.now() == pytest.approx(0.1)
    assert len(nodes["B"].received) == 1


def test_backlog_accumulates_per_directed_link(capped):
    sim, net, nodes = capped
    # Two back-to-back messages on A->B queue; the reverse link is idle.
    nodes["A"].send("B", Sized(100))
    nodes["A"].send("B", Sized(100))
    nodes["B"].send("A", Sized(100))
    sim.run_until_idle()
    assert sim.now() == pytest.approx(0.2)  # A->B drained at 0.2, B->A at 0.1
    assert len(nodes["B"].received) == 2
    assert len(nodes["A"].received) == 1


def test_link_idles_down_between_sends(capped):
    sim, net, nodes = capped
    nodes["A"].send("B", Sized(100))
    sim.run_until_idle()
    # After the link drains, the next send pays only its own serialization.
    nodes["A"].send("B", Sized(100))
    sim.run_until_idle()
    assert sim.now() == pytest.approx(0.2)


def test_bounded_queue_tail_drops(capped):
    sim, net, nodes = capped
    net.config.queue_bytes = 250
    for _ in range(5):
        nodes["A"].send("B", Sized(100))
    sim.run_until_idle()
    # 100 (in service) + 100 queued fit; the rest overflow 250 bytes.
    assert len(nodes["B"].received) < 5
    assert net.counters.get("messages_dropped_link_overflow") >= 1
    assert (
        len(nodes["B"].received)
        + net.counters.get("messages_dropped_link_overflow")
        == 5
    )


def test_default_config_has_infinite_bandwidth(rig):
    sim, net, nodes = rig
    assert net.config.bandwidth == 0.0
    for _ in range(50):
        nodes["A"].send("B", Sized(10_000))
    sim.run_until_idle()
    # No capacity model: everything arrives after base delay, no queueing.
    assert len(nodes["B"].received) == 50
    assert sim.now() == pytest.approx(0.001)
    assert not net.counters.get("messages_dropped_link_overflow")


def test_down_node_neither_sends_nor_receives(rig):
    sim, net, nodes = rig
    net.set_down("B")
    nodes["A"].send("B", "m1")
    nodes["B"].send("A", "m2")
    sim.run_until_idle()
    assert nodes["B"].received == []
    assert nodes["A"].received == []
    net.set_down("B", False)
    nodes["A"].send("B", "m3")
    sim.run_until_idle()
    assert nodes["B"].received == [("A", "m3")]


def test_message_in_flight_to_down_node_dropped(rig):
    sim, net, nodes = rig
    nodes["A"].send("B", "m")
    net.set_down("B")
    sim.run_until_idle()
    assert nodes["B"].received == []


def test_partition_blocks_cross_group_traffic(rig):
    sim, net, nodes = rig
    net.partition(["A"], ["B", "C"])
    nodes["A"].send("B", "m")
    nodes["B"].send("C", "m2")
    sim.run_until_idle()
    assert nodes["B"].received == [("B", "m2")] or nodes["C"].received == [("B", "m2")]
    assert all(src != "A" for src, _ in nodes["B"].received)
    net.heal_partition()
    nodes["A"].send("B", "m3")
    sim.run_until_idle()
    assert ("A", "m3") in nodes["B"].received


def test_unlisted_node_keeps_connectivity(rig):
    sim, net, nodes = rig
    net.partition(["A"], ["B"])  # C unlisted
    nodes["C"].send("A", "m")
    nodes["C"].send("B", "m")
    sim.run_until_idle()
    assert nodes["A"].received == [("C", "m")]
    assert nodes["B"].received == [("C", "m")]


def test_drop_rate_one_drops_everything():
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delay=0.001, jitter=0.0, drop_rate=1.0))
    a = Recorder("A", sim, net)
    b = Recorder("B", sim, net)
    for _ in range(20):
        a.send("B", "m")
    sim.run_until_idle()
    assert b.received == []
    assert net.counters.get("messages_dropped_loss") == 20


def test_interceptor_can_swallow_and_replace(rig):
    sim, net, nodes = rig
    remove = net.add_interceptor(
        lambda src, dst, msg: None if msg == "drop-me" else msg.upper()
    )
    nodes["A"].send("B", "drop-me")
    nodes["A"].send("B", "pass")
    sim.run_until_idle()
    assert nodes["B"].received == [("A", "PASS")]
    remove()
    nodes["A"].send("B", "raw")
    sim.run_until_idle()
    assert nodes["B"].received[-1] == ("A", "raw")


def test_stopped_node_ignores_messages(rig):
    sim, net, nodes = rig
    nodes["B"].stop()
    nodes["A"].send("B", "m")
    sim.run_until_idle()
    assert nodes["B"].received == []


def test_node_timer_fires_and_cancels_on_stop(rig):
    sim, net, nodes = rig
    fired = []
    nodes["A"].set_timer(0.1, lambda: fired.append(1))
    nodes["B"].set_timer(0.1, lambda: fired.append(2))
    nodes["B"].stop()
    sim.run_until_idle()
    assert fired == [1]


def test_byte_accounting(rig):
    sim, net, nodes = rig

    class Sized:
        def wire_size(self):
            return 100

    nodes["A"].send("B", Sized())
    sim.run_until_idle()
    assert net.counters.get("bytes_sent") == 100
    assert net.counters.get("messages_delivered") == 1


def test_per_link_override():
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delay=0.001, jitter=0.0))
    a = Recorder("A", sim, net)
    b = Recorder("B", sim, net)
    net.set_link("A", "B", NetworkConfig(delay=1.0, jitter=0.0))
    a.send("B", "slow")
    sim.run_until_idle()
    assert sim.now() >= 1.0
    assert b.received == [("A", "slow")]
