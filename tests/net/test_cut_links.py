"""Composable directed link cuts: stacking, independent heal, orthogonality
to the wholesale partition()/heal_partition() pair."""

import pytest

from repro.net.network import Network, NetworkConfig
from repro.net.node import Node
from repro.net.simulator import Simulator


class Recorder(Node):
    def __init__(self, node_id, sim, network):
        super().__init__(node_id, sim, network)
        self.received = []

    def on_message(self, message, src):
        self.received.append((src, message))


@pytest.fixture
def rig():
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delay=0.001, jitter=0.0))
    nodes = {name: Recorder(name, sim, net) for name in ["A", "B", "C"]}
    return sim, net, nodes


def test_cut_is_directed(rig):
    sim, net, nodes = rig
    net.cut_links([("A", "B")])
    nodes["A"].send("B", "blocked")
    nodes["B"].send("A", "allowed")
    sim.run_until_idle()
    assert nodes["B"].received == []
    assert nodes["A"].received == [("B", "allowed")]
    assert net.counters.get("messages_dropped_cut") == 1


def test_restore_heals_exactly(rig):
    sim, net, nodes = rig
    net.cut_links([("A", "B"), ("B", "A")])
    assert net.is_cut("A", "B") and net.is_cut("B", "A")
    net.restore_links([("A", "B"), ("B", "A")])
    assert not net.is_cut("A", "B")
    nodes["A"].send("B", "m")
    sim.run_until_idle()
    assert nodes["B"].received == [("A", "m")]


def test_overlapping_cuts_stack(rig):
    """Two cut sets sharing a link: the link stays severed until *both*
    holders restore it, and each set heals independently."""
    sim, net, nodes = rig
    storm1 = [("A", "B"), ("A", "C")]
    storm2 = [("A", "B")]
    net.cut_links(storm1)
    net.cut_links(storm2)

    net.restore_links(storm1)
    assert net.is_cut("A", "B")  # storm2 still holds it
    assert not net.is_cut("A", "C")
    nodes["A"].send("B", "still-blocked")
    nodes["A"].send("C", "flows")
    sim.run_until_idle()
    assert nodes["B"].received == []
    assert nodes["C"].received == [("A", "flows")]

    net.restore_links(storm2)
    assert not net.is_cut("A", "B")
    nodes["A"].send("B", "healed")
    sim.run_until_idle()
    assert nodes["B"].received == [("A", "healed")]


def test_restore_of_uncut_link_is_noop(rig):
    _sim, net, _nodes = rig
    net.restore_links([("A", "B")])
    assert not net.is_cut("A", "B")
    net.cut_links([("A", "B")])
    net.restore_links([("A", "B")])
    net.restore_links([("A", "B")])  # over-restore must not go negative
    net.cut_links([("A", "B")])
    assert net.is_cut("A", "B")


def test_in_flight_message_dropped_when_cut_lands_first(rig):
    """A message already serialized onto the wire is dropped if the link is
    severed before delivery (the cut models a physical line going dark)."""
    sim, net, nodes = rig
    nodes["A"].send("B", "doomed")
    net.cut_links([("A", "B")])
    sim.run_until_idle()
    assert nodes["B"].received == []
    assert net.counters.get("messages_dropped_cut") == 1


def test_cuts_orthogonal_to_partition(rig):
    """heal_partition() must not release link cuts, and vice versa."""
    sim, net, nodes = rig
    net.cut_links([("A", "B")])
    net.partition(["A"], ["B", "C"])
    net.heal_partition()
    nodes["A"].send("B", "blocked-by-cut")
    nodes["A"].send("C", "flows")
    sim.run_until_idle()
    assert nodes["B"].received == []
    assert nodes["C"].received == [("A", "flows")]

    net.restore_links([("A", "B")])
    net.partition(["A"], ["B"])
    nodes["A"].send("B", "blocked-by-partition")
    sim.run_until_idle()
    assert nodes["B"].received == []


def test_partition_semantics_unchanged(rig):
    """The historical wholesale-replace behavior: a second partition() call
    replaces the first, unlisted nodes keep connectivity."""
    sim, net, nodes = rig
    net.partition(["A"], ["B"])
    net.partition(["A", "B"], ["C"])  # replaces: A<->B now connected
    nodes["A"].send("B", "m")
    nodes["A"].send("C", "x")
    sim.run_until_idle()
    assert nodes["B"].received == [("A", "m")]
    assert nodes["C"].received == []
