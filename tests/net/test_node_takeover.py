"""Node identity takeover: the reboot mechanism at the network layer."""

import pytest

from repro.net.network import Network, NetworkConfig
from repro.net.node import Node
from repro.net.simulator import Simulator


class Recorder(Node):
    def __init__(self, node_id, sim, network, takeover=False):
        super().__init__(node_id, sim, network, takeover=takeover)
        self.received = []

    def on_message(self, message, src):
        self.received.append((src, message))


@pytest.fixture
def rig():
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delay=0.001, jitter=0.0))
    return sim, net


def test_takeover_redirects_delivery(rig):
    sim, net = rig
    first = Recorder("A", sim, net)
    other = Recorder("B", sim, net)
    other.send("A", "to-first")
    sim.run_until_idle()
    assert first.received == [("B", "to-first")]

    second = Recorder("A", sim, net, takeover=True)
    other.send("A", "to-second")
    sim.run_until_idle()
    assert second.received == [("B", "to-second")]
    assert first.received == [("B", "to-first")]  # old instance sees nothing


def test_takeover_of_unknown_id_rejected(rig):
    sim, net = rig
    with pytest.raises(KeyError):
        Recorder("ghost", sim, net, takeover=True)


def test_old_instance_timers_do_not_fire_after_takeover(rig):
    sim, net = rig
    first = Recorder("A", sim, net)
    fired = []
    first.set_timer(0.5, lambda: fired.append("old"))
    first.stop()
    second = Recorder("A", sim, net, takeover=True)
    second.set_timer(0.5, lambda: fired.append("new"))
    sim.run_until_idle()
    assert fired == ["new"]


def test_old_instance_cannot_send_after_stop(rig):
    sim, net = rig
    first = Recorder("A", sim, net)
    target = Recorder("B", sim, net)
    first.stop()
    Recorder("A", sim, net, takeover=True)
    first.send("B", "zombie")
    sim.run_until_idle()
    assert target.received == []
