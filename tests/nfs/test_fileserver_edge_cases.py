"""File-server edge semantics all four vendors must share."""

import pytest

from repro.nfs.fileserver import BtrFS, Ext2FS, FFS, LogFS, MemFS
from repro.nfs.protocol import (
    NFSERR_NOENT,
    NFS_OK,
    Sattr,
)

VENDORS = [MemFS, Ext2FS, FFS, LogFS, BtrFS]


@pytest.fixture(params=VENDORS, ids=lambda cls: cls.__name__)
def server(request):
    return request.param(disk={}, seed=21)


def test_rename_to_same_name_is_noop_success(server):
    root = server.root_handle()
    server.create(root, "f", Sattr())
    assert server.rename(root, "f", root, "f").status == NFS_OK
    assert server.lookup(root, "f").ok


def test_write_empty_data(server):
    root = server.root_handle()
    fh = server.create(root, "f", Sattr()).fh
    assert server.write(fh, 0, b"").ok
    assert server.read(fh, 0, 10).data == b""


def test_read_past_eof_returns_empty(server):
    root = server.root_handle()
    fh = server.create(root, "f", Sattr()).fh
    server.write(fh, 0, b"abc")
    assert server.read(fh, 100, 10).data == b""


def test_read_zero_count(server):
    root = server.root_handle()
    fh = server.create(root, "f", Sattr()).fh
    server.write(fh, 0, b"abc")
    assert server.read(fh, 0, 0).data == b""


def test_create_with_initial_size(server):
    root = server.root_handle()
    reply = server.create(root, "f", Sattr(size=16))
    assert reply.ok
    assert server.read(reply.fh, 0, 32).data == b"\x00" * 16


def test_truncate_to_zero_then_rewrite(server):
    root = server.root_handle()
    fh = server.create(root, "f", Sattr()).fh
    server.write(fh, 0, b"old content")
    server.setattr(fh, Sattr(size=0))
    server.write(fh, 0, b"new")
    assert server.read(fh, 0, 32).data == b"new"


def test_deeply_nested_directories(server):
    fh = server.root_handle()
    for depth in range(12):
        fh = server.mkdir(fh, f"d{depth}", Sattr()).fh
    leaf = server.create(fh, "leaf", Sattr())
    assert leaf.ok
    # Walk back down from the root.
    fh = server.root_handle()
    for depth in range(12):
        fh = server.lookup(fh, f"d{depth}").fh
    assert server.lookup(fh, "leaf").ok


def test_many_entries_one_directory(server):
    root = server.root_handle()
    for i in range(60):
        assert server.create(root, f"file{i:03d}", Sattr()).ok
    listing = server.readdir(root)
    assert len(listing.entries) == 60
    assert server.remove(root, "file030").ok
    assert server.lookup(root, "file030").status == NFSERR_NOENT
    assert len(server.readdir(root).entries) == 59


def test_unicode_names(server):
    root = server.root_handle()
    name = "héllo-wörld-文件"
    assert server.create(root, name, Sattr()).ok
    assert server.lookup(root, name).ok
    assert name in {n for n, _ in server.readdir(root).entries}


def test_large_file_roundtrip(server):
    root = server.root_handle()
    fh = server.create(root, "big", Sattr()).fh
    blob = bytes(range(256)) * 64  # 16 KiB: spans many ext2 blocks
    assert server.write(fh, 0, blob).ok
    read_back = b""
    offset = 0
    while True:
        chunk = server.read(fh, offset, 4096).data
        if not chunk:
            break
        read_back += chunk
        offset += len(chunk)
    assert read_back == blob


def test_symlink_may_shadow_nothing(server):
    root = server.root_handle()
    assert server.symlink(root, "dangling", "/does/not/exist", Sattr()).ok
    fh = server.lookup(root, "dangling").fh
    assert server.readlink(fh).target == "/does/not/exist"


def test_setattr_explicit_times(server):
    root = server.root_handle()
    fh = server.create(root, "f", Sattr()).fh
    reply = server.setattr(fh, Sattr(mtime=123_000_000, atime=99_000_000))
    assert reply.ok
    assert reply.attr.mtime == 123_000_000
    assert reply.attr.atime == 99_000_000
