"""Client façade over the direct (unreplicated) transport."""

import pytest

from repro.nfs.client import NFSClient, NFSError
from repro.nfs.direct import direct_client
from repro.nfs.fileserver import MemFS
from repro.nfs.protocol import NFDIR, NFLNK, NFREG, NFSERR_NOENT, Sattr


@pytest.fixture
def fs():
    return direct_client(MemFS(disk={}, seed=1))


def test_write_and_read_roundtrip(fs):
    fs.write_file("/hello.txt", b"hi there")
    assert fs.read_file("/hello.txt") == b"hi there"


def test_large_file_chunked_io(fs):
    blob = bytes(range(256)) * 200  # > MAX_DATA, forces chunking
    fs.write_file("/big.bin", blob)
    assert fs.read_file("/big.bin") == blob
    assert fs.stat("/big.bin").size == len(blob)


def test_nested_paths(fs):
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    fs.mkdir("/a/b/c")
    fs.write_file("/a/b/c/deep.txt", b"deep")
    assert fs.read_file("/a/b/c/deep.txt") == b"deep"
    assert fs.walk_tree("/") == ["/a", "/a/b", "/a/b/c", "/a/b/c/deep.txt"]


def test_missing_path_raises_with_status(fs):
    with pytest.raises(NFSError) as exc:
        fs.stat("/nope")
    assert exc.value.status == NFSERR_NOENT


def test_exists(fs):
    assert not fs.exists("/x")
    fs.create("/x")
    assert fs.exists("/x")


def test_unlink_and_rmdir(fs):
    fs.mkdir("/d")
    fs.create("/d/f")
    fs.unlink("/d/f")
    fs.rmdir("/d")
    assert not fs.exists("/d")


def test_rename(fs):
    fs.write_file("/old", b"v")
    fs.rename("/old", "/new")
    assert not fs.exists("/old")
    assert fs.read_file("/new") == b"v"


def test_symlink_roundtrip(fs):
    fs.symlink("/somewhere", "/ln")
    assert fs.readlink("/ln") == "/somewhere"
    assert fs.stat("/ln").ftype == NFLNK


def test_setattr_mode(fs):
    fs.create("/f", mode=0o644)
    attr = fs.setattr("/f", Sattr(mode=0o400))
    assert attr.mode == 0o400


def test_write_at_offset(fs):
    fs.write_file("/f", b"AAAA")
    fs.write("/f", b"BB", offset=1)
    assert fs.read_file("/f") == b"ABBA"


def test_write_file_truncates(fs):
    fs.write_file("/f", b"long-old-content")
    fs.write_file("/f", b"new")
    assert fs.read_file("/f") == b"new"


def test_listdir_and_types(fs):
    fs.mkdir("/d")
    fs.create("/f")
    names = fs.listdir("/")
    assert set(names) == {"d", "f"}
    assert fs.stat("/d").ftype == NFDIR
    assert fs.stat("/f").ftype == NFREG


def test_statfs(fs):
    assert len(fs.statfs("/")) > 0


def test_direct_transport_counts_calls(fs):
    before = fs.transport.counters.get("nfs_calls")
    fs.write_file("/counted", b"x")
    assert fs.transport.counters.get("nfs_calls") > before
