"""State conversion: the abstraction function and its inverse.

The killer test is the *transplant*: extract the whole abstract state from a
wrapper over vendor A and install it with ``put_objs`` into a fresh wrapper
over vendor B; every abstract object must then read back identically even
though the concrete representations share nothing."""

import pytest

from repro.nfs.conversion import abstraction_function, inverse_abstraction_function
from repro.nfs.fileserver import BtrFS, Ext2FS, FFS, LogFS, MemFS
from repro.nfs.protocol import (
    NFDIR,
    NFNON,
    NFREG,
    CreateCall,
    MkdirCall,
    NfsReply,
    RemoveCall,
    RenameCall,
    RmdirCall,
    Sattr,
    SetattrCall,
    SymlinkCall,
    WriteCall,
)
from repro.nfs.spec import AbstractObject, NFSAbstractSpec, ROOT_OID, make_oid
from repro.nfs.wrapper import NFSConformanceWrapper

VENDORS = [MemFS, Ext2FS, FFS, LogFS, BtrFS]
N_OBJECTS = 24


def make_wrapper(vendor, seed=9):
    impl = vendor(disk={}, seed=seed, clock=lambda: 50.0)
    return NFSConformanceWrapper(impl, NFSAbstractSpec(N_OBJECTS), disk={})


def run(wrapper, call, ts=1_000_000):
    return NfsReply.decode(wrapper.execute(call.encode(), "C0", ts))


def build_tree(wrapper):
    """A small tree with every object type plus some churn."""
    ts = iter(range(1_000_000, 9_000_000, 1000))
    run(wrapper, MkdirCall(dir_fh=ROOT_OID, name="src", sattr=Sattr(mode=0o755)), next(ts))
    src = make_oid(1, 1)
    run(wrapper, CreateCall(dir_fh=src, name="main.c", sattr=Sattr(mode=0o644)), next(ts))
    main = make_oid(2, 1)
    run(wrapper, WriteCall(fh=main, offset=0, data=b"int main() {}\n" * 40), next(ts))
    run(wrapper, SymlinkCall(dir_fh=ROOT_OID, name="latest", target="/src/main.c", sattr=Sattr()), next(ts))
    run(wrapper, CreateCall(dir_fh=ROOT_OID, name="temp", sattr=Sattr()), next(ts))
    run(wrapper, RemoveCall(dir_fh=ROOT_OID, name="temp"), next(ts))  # free + regen
    run(wrapper, CreateCall(dir_fh=src, name="util.c", sattr=Sattr(mode=0o600)), next(ts))
    run(wrapper, RenameCall(from_dir=src, from_name="util.c", to_dir=ROOT_OID, to_name="util.c"), next(ts))
    run(wrapper, SetattrCall(fh=main, sattr=Sattr(mode=0o400)), next(ts))


def full_abstract_state(wrapper):
    return [abstraction_function(wrapper, index) for index in range(N_OBJECTS)]


class TestAbstractionFunction:
    def test_free_entry_is_null_with_generation(self):
        wrapper = make_wrapper(MemFS)
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="x", sattr=Sattr()))
        run(wrapper, RemoveCall(dir_fh=ROOT_OID, name="x"))
        obj = AbstractObject.decode(abstraction_function(wrapper, 1))
        assert obj.ftype == NFNON
        assert obj.generation == 1

    def test_initial_state_matches_spec(self):
        spec = NFSAbstractSpec(N_OBJECTS)
        for vendor in VENDORS:
            wrapper = make_wrapper(vendor)
            for index in range(N_OBJECTS):
                assert abstraction_function(wrapper, index) == spec.initial_object(index), (
                    f"{vendor.__name__} initial object {index} deviates from the spec"
                )

    def test_directory_value_sorted_with_oids(self):
        wrapper = make_wrapper(FFS)
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="zz", sattr=Sattr()))
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="aa", sattr=Sattr()))
        root = AbstractObject.decode(abstraction_function(wrapper, 0))
        assert root.ftype == NFDIR
        assert [name for name, _ in root.entries] == ["aa", "zz"]
        assert root.entries[0][1] == make_oid(2, 1)
        assert root.entries[1][1] == make_oid(1, 1)


@pytest.mark.parametrize("source_vendor", VENDORS, ids=lambda c: c.__name__)
@pytest.mark.parametrize("target_vendor", VENDORS, ids=lambda c: c.__name__)
class TestTransplant:
    def test_full_state_transplant(self, source_vendor, target_vendor):
        source = make_wrapper(source_vendor, seed=3)
        build_tree(source)
        state = full_abstract_state(source)

        target = make_wrapper(target_vendor, seed=77)
        changed = {
            index: blob
            for index, blob in enumerate(state)
            if blob != NFSAbstractSpec(N_OBJECTS).initial_object(index)
        }
        inverse_abstraction_function(target, changed)
        assert full_abstract_state(target) == state


class TestInverseIncremental:
    """put_objs applied to deltas, as state transfer does."""

    def _pair(self):
        source = make_wrapper(MemFS, seed=1)
        target = make_wrapper(Ext2FS, seed=2)
        return source, target

    def _sync(self, source, target):
        source_state = full_abstract_state(source)
        delta = {
            index: blob
            for index, blob in enumerate(source_state)
            if blob != abstraction_function(target, index)
        }
        if delta:
            inverse_abstraction_function(target, delta)
        assert full_abstract_state(target) == source_state
        return len(delta)

    def test_incremental_sync_after_each_step(self):
        source, target = self._pair()
        steps = [
            MkdirCall(dir_fh=ROOT_OID, name="d", sattr=Sattr()),
            CreateCall(dir_fh=make_oid(1, 1), name="f", sattr=Sattr()),
            WriteCall(fh=make_oid(2, 1), offset=0, data=b"abc"),
            WriteCall(fh=make_oid(2, 1), offset=1, data=b"ZZ"),
            SetattrCall(fh=make_oid(2, 1), sattr=Sattr(mode=0o700)),
            RenameCall(from_dir=make_oid(1, 1), from_name="f", to_dir=ROOT_OID, to_name="g"),
            RemoveCall(dir_fh=ROOT_OID, name="g"),
        ]
        for step_number, call in enumerate(steps):
            run(source, call, ts=2_000_000 + step_number * 1000)
            self._sync(source, target)

    def test_delta_touches_only_changed_objects(self):
        source, target = self._pair()
        run(source, MkdirCall(dir_fh=ROOT_OID, name="d", sattr=Sattr()))
        first = self._sync(source, target)
        assert first == 2  # root + new dir
        run(source, CreateCall(dir_fh=make_oid(1, 1), name="f", sattr=Sattr()))
        second = self._sync(source, target)
        assert second == 2  # dir + new file; root untouched

    def test_object_move_between_directories(self):
        source, target = self._pair()
        run(source, MkdirCall(dir_fh=ROOT_OID, name="a", sattr=Sattr()))
        run(source, MkdirCall(dir_fh=ROOT_OID, name="b", sattr=Sattr()))
        run(source, CreateCall(dir_fh=make_oid(1, 1), name="f", sattr=Sattr()))
        run(source, WriteCall(fh=make_oid(3, 1), offset=0, data=b"move-me"))
        self._sync(source, target)
        run(
            source,
            RenameCall(from_dir=make_oid(1, 1), from_name="f", to_dir=make_oid(2, 1), to_name="f2"),
        )
        delta = self._sync(source, target)
        assert delta == 2  # both directory objects; the file itself unchanged

    def test_index_reuse_with_type_change(self):
        source, target = self._pair()
        run(source, CreateCall(dir_fh=ROOT_OID, name="f", sattr=Sattr()))
        self._sync(source, target)
        run(source, RemoveCall(dir_fh=ROOT_OID, name="f"))
        run(source, MkdirCall(dir_fh=ROOT_OID, name="d", sattr=Sattr()))  # index 1, gen 2, DIR now
        self._sync(source, target)
        obj = AbstractObject.decode(abstraction_function(target, 1))
        assert obj.ftype == NFDIR
        assert obj.generation == 2

    def test_symlink_retarget(self):
        source, target = self._pair()
        run(source, SymlinkCall(dir_fh=ROOT_OID, name="l", target="/one", sattr=Sattr()))
        self._sync(source, target)
        run(source, RemoveCall(dir_fh=ROOT_OID, name="l"))
        run(source, SymlinkCall(dir_fh=ROOT_OID, name="l", target="/two", sattr=Sattr()))
        self._sync(source, target)
        obj = AbstractObject.decode(abstraction_function(target, 1))
        assert obj.target == "/two"

    def test_deep_tree_teardown(self):
        source, target = self._pair()
        run(source, MkdirCall(dir_fh=ROOT_OID, name="a", sattr=Sattr()))
        run(source, MkdirCall(dir_fh=make_oid(1, 1), name="b", sattr=Sattr()))
        run(source, CreateCall(dir_fh=make_oid(2, 1), name="f", sattr=Sattr()))
        self._sync(source, target)
        run(source, RemoveCall(dir_fh=make_oid(2, 1), name="f"))
        run(source, RmdirCall(dir_fh=make_oid(1, 1), name="b"))
        run(source, RmdirCall(dir_fh=ROOT_OID, name="a"))
        self._sync(source, target)
        for index in (1, 2, 3):
            obj = AbstractObject.decode(abstraction_function(target, index))
            assert obj.ftype == NFNON
