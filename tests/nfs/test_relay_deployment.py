"""Deployment and relay plumbing."""

import pytest

from repro.bft.config import BFTConfig
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import MemFS
from repro.nfs.relay import NFSDeployment, NFSRelay


def memfs_factories():
    return {
        rid: (lambda disk, i=i: MemFS(disk=disk, seed=50 + i))
        for i, rid in enumerate(["R0", "R1", "R2", "R3"])
    }


def test_requires_factory_per_replica():
    with pytest.raises(ValueError):
        NFSDeployment({"R0": lambda disk: MemFS(disk=disk)})


def test_disks_persist_per_replica():
    dep = NFSDeployment(memfs_factories(), num_objects=32)
    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/x", b"1")
    assert set(dep.disks) == {"R0", "R1", "R2", "R3"}
    for disk in dep.disks.values():
        assert "memfs:nodes" in disk


def test_accessors(dep=None):
    dep = NFSDeployment(memfs_factories(), num_objects=32)
    for rid in ("R0", "R1", "R2", "R3"):
        assert dep.wrapper(rid).impl is dep.impl(rid)
        assert isinstance(dep.impl(rid), MemFS)


def test_multiple_relays_share_the_service():
    dep = NFSDeployment(memfs_factories(), num_objects=32)
    alice = NFSClient(dep.relay("alice"))
    bob = NFSClient(dep.relay("bob"))
    alice.write_file("/shared.txt", b"from alice")
    assert bob.read_file("/shared.txt") == b"from alice"
    bob.unlink("/shared.txt")
    assert not alice.exists("/shared.txt")


def test_relay_read_only_flag_off_orders_reads():
    dep = NFSDeployment(memfs_factories(), num_objects=32)
    fs = NFSClient(dep.relay("C0", read_only_optimization=False))
    fs.write_file("/f", b"v")
    executed_before = dep.cluster.replica("R0").last_executed
    fs.read_file("/f")
    dep.sim.run_for(0.5)
    assert dep.cluster.replica("R0").last_executed > executed_before


def test_relay_read_only_flag_on_skips_ordering():
    dep = NFSDeployment(memfs_factories(), num_objects=32)
    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/f", b"v")
    dep.sim.run_for(0.5)
    executed_before = dep.cluster.replica("R0").last_executed
    # A pure read (no path re-resolution caching games: stat the root).
    fs.stat("/")
    dep.sim.run_for(0.5)
    assert dep.cluster.replica("R0").last_executed == executed_before


def test_num_objects_bounds_namespace():
    dep = NFSDeployment(memfs_factories(), num_objects=4)
    fs = NFSClient(dep.relay("C0"))
    fs.create("/a")
    fs.create("/b")
    fs.create("/c")
    from repro.nfs.client import NFSError

    with pytest.raises(NFSError):
        fs.create("/overflow")
