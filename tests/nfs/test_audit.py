"""Abstract-state auditing tools."""

import pytest

from repro.nfs.audit import audit_wrapper, diff_wrappers
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import Ext2FS, MemFS
from repro.nfs.protocol import CreateCall, MkdirCall, Sattr, WriteCall
from repro.nfs.spec import NFSAbstractSpec, ROOT_OID, make_oid
from repro.nfs.wrapper import NFSConformanceWrapper


def make_wrapper(vendor=MemFS, seed=1):
    return NFSConformanceWrapper(
        vendor(disk={}, seed=seed, clock=lambda: 5.0), NFSAbstractSpec(16), disk={}
    )


def run(wrapper, call, ts=1_000_000):
    wrapper.execute(call.encode(), "C0", ts)


def build(wrapper):
    run(wrapper, MkdirCall(dir_fh=ROOT_OID, name="d", sattr=Sattr()))
    run(wrapper, CreateCall(dir_fh=make_oid(1, 1), name="f", sattr=Sattr()))
    run(wrapper, WriteCall(fh=make_oid(2, 1), offset=0, data=b"hello"))


class TestDiff:
    def test_identical_states_have_no_diff(self):
        a, b = make_wrapper(MemFS, 1), make_wrapper(Ext2FS, 2)
        build(a)
        build(b)
        assert diff_wrappers(a, b) == []

    def test_data_difference_located(self):
        a, b = make_wrapper(MemFS, 1), make_wrapper(MemFS, 2)
        build(a)
        build(b)
        run(b, WriteCall(fh=make_oid(2, 1), offset=0, data=b"WORLD"), ts=2_000_000)
        diffs = diff_wrappers(a, b)
        assert [d.index for d in diffs] == [2]
        assert "data" in diffs[0].describe() or "metadata" in diffs[0].describe()

    def test_structural_difference_located(self):
        a, b = make_wrapper(MemFS, 1), make_wrapper(MemFS, 2)
        build(a)
        build(b)
        run(b, CreateCall(dir_fh=ROOT_OID, name="extra", sattr=Sattr()), ts=2_000_000)
        diffs = diff_wrappers(a, b)
        indexes = {d.index for d in diffs}
        assert 0 in indexes  # root gained an entry
        assert any("only in right" in d.describe() for d in diffs)

    def test_mismatched_specs_rejected(self):
        a = make_wrapper()
        b = NFSConformanceWrapper(MemFS(disk={}, seed=9), NFSAbstractSpec(8), disk={})
        with pytest.raises(ValueError):
            diff_wrappers(a, b)


class TestAudit:
    def test_healthy_wrapper_passes(self):
        wrapper = make_wrapper()
        build(wrapper)
        report = audit_wrapper(wrapper)
        assert report.ok, report.problems

    def test_detects_orphaned_object(self):
        wrapper = make_wrapper()
        build(wrapper)
        # Hide the file in limbo behind the wrapper's back: it stays
        # allocated in the rep but no directory references it any more.
        from repro.nfs.wrapper import LIMBO_NAME

        limbo = wrapper.limbo_fh()
        wrapper.impl.rename(wrapper.entries[1].fh, "f", limbo, "hidden")
        report = audit_wrapper(wrapper)
        assert not report.ok
        assert any("orphaned" in problem for problem in report.problems)

    def test_detects_fh_map_corruption(self):
        wrapper = make_wrapper()
        build(wrapper)
        victim_fh = next(iter(wrapper.fh_to_index))
        wrapper.fh_to_index[victim_fh] = 7  # bogus index
        report = audit_wrapper(wrapper)
        assert not report.ok
        assert any("fh map" in problem for problem in report.problems)

    def test_replicated_deployment_stays_audit_clean(self):
        from repro.bft.config import BFTConfig
        from repro.nfs.fileserver import FFS, LogFS
        from repro.nfs.relay import NFSDeployment

        dep = NFSDeployment(
            {
                "R0": lambda disk: MemFS(disk=disk, seed=1),
                "R1": lambda disk: Ext2FS(disk=disk, seed=2),
                "R2": lambda disk: FFS(disk=disk, seed=3),
                "R3": lambda disk: LogFS(disk=disk, seed=4),
            },
            num_objects=32,
            config=BFTConfig(checkpoint_interval=8, log_window=16),
        )
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/a")
        fs.write_file("/a/x", b"1")
        fs.rename("/a/x", "/y")
        fs.unlink("/y")
        dep.sim.run_for(1.0)
        for rid in dep.cluster.hosts:
            report = audit_wrapper(dep.wrapper(rid))
            assert report.ok, (rid, report.problems)
        assert diff_wrappers(dep.wrapper("R0"), dep.wrapper("R3")) == []
