"""n=7, f=2 heterogeneous file service using all five vendors.

The paper's point about market diversity ("four or more distinct
implementations") composed with a larger quorum system: seven replicas over
five distinct implementations tolerate two simultaneous faults."""

import pytest

from repro.bft.config import BFTConfig
from repro.nfs.audit import diff_wrappers
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import BtrFS, Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment

SEVEN = [f"R{i}" for i in range(7)]
VENDOR_ROTATION = [MemFS, Ext2FS, FFS, LogFS, BtrFS, MemFS, Ext2FS]


def seven_deployment():
    factories = {
        rid: (lambda disk, i=i: VENDOR_ROTATION[i](disk=disk, seed=70 + i))
        for i, rid in enumerate(SEVEN)
    }
    return NFSDeployment(
        factories,
        num_objects=64,
        config=BFTConfig(
            replica_ids=list(SEVEN), f=2, checkpoint_interval=8, log_window=16
        ),
    )


def test_seven_replicas_converge():
    dep = seven_deployment()
    fs = NFSClient(dep.relay("C0"))
    fs.mkdir("/d")
    for i in range(8):
        fs.write_file(f"/d/f{i}", bytes([i]) * 40)
    dep.sim.run_for(1.0)
    roots = {
        rid: dep.cluster.service(rid).current_node(0, 0)[1] for rid in dep.cluster.hosts
    }
    assert len(set(roots.values())) == 1


def test_two_faults_masked_with_five_vendors():
    dep = seven_deployment()
    fs = NFSClient(dep.relay("C0"))
    fs.write_file("/pre", b"before faults")
    dep.cluster.crash("R2")
    dep.cluster.crash("R5")
    fs.write_file("/during", b"with two crashed")
    assert fs.read_file("/pre") == b"before faults"
    assert fs.read_file("/during") == b"with two crashed"


def test_recovery_in_seven_replica_deployment():
    dep = seven_deployment()
    fs = NFSClient(dep.relay("C0"))
    for i in range(12):
        fs.write_file(f"/f{i}", bytes([i]) * 30)
    dep.sim.run_for(1.0)
    host = dep.cluster.hosts["R4"]  # the BtrFS replica
    assert host.recover_now()
    dep.sim.run_for(5.0)
    assert host.replica.counters.get("recoveries_completed") == 1
    assert diff_wrappers(dep.wrapper("R4"), dep.wrapper("R0")) == []
