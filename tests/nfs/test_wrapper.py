"""Conformance wrapper: determinism across heterogeneous implementations.

The central assertion, repeated in many forms: wrap any two different
vendors, drive them through the same operation sequence with the same agreed
timestamps, and every client-visible reply and every abstract object is
byte-identical."""

import pytest

from repro.nfs.conversion import abstraction_function
from repro.nfs.fileserver import BtrFS, Ext2FS, FFS, LogFS, MemFS
from repro.nfs.protocol import (
    NFDIR,
    NFSERR_NOENT,
    NFSERR_NOSPC,
    NFS_OK,
    CreateCall,
    GetattrCall,
    LookupCall,
    MkdirCall,
    NfsReply,
    ReadCall,
    ReaddirCall,
    RemoveCall,
    RenameCall,
    Sattr,
    SetattrCall,
    SymlinkCall,
    WriteCall,
)
from repro.nfs.spec import NFSAbstractSpec, ROOT_OID, make_oid
from repro.nfs.wrapper import LIMBO_NAME, NFSConformanceWrapper

VENDORS = [MemFS, Ext2FS, FFS, LogFS, BtrFS]


def make_wrapper(vendor, seed=5, num_objects=32, skew=0.0):
    impl = vendor(disk={}, seed=seed, clock=lambda: 100.0, clock_skew=skew)
    return NFSConformanceWrapper(impl, NFSAbstractSpec(num_objects), disk={})


def run(wrapper, call, ts=1_000_000, read_only=False):
    return NfsReply.decode(wrapper.execute(call.encode(), "C0", ts, read_only))


SCRIPT = [
    MkdirCall(dir_fh=ROOT_OID, name="src", sattr=Sattr(mode=0o755)),
    CreateCall(dir_fh=ROOT_OID, name="README", sattr=Sattr(mode=0o644)),
    LookupCall(dir_fh=ROOT_OID, name="README"),
    GetattrCall(fh=ROOT_OID),
    ReaddirCall(fh=ROOT_OID),
    SymlinkCall(dir_fh=ROOT_OID, name="link", target="/src", sattr=Sattr(mode=0o777)),
]


class TestDeterminismAcrossVendors:
    def test_identical_replies_for_identical_scripts(self):
        wrappers = [make_wrapper(v, seed=i * 17 + 1, skew=i * 0.3) for i, v in enumerate(VENDORS)]
        for step, call in enumerate(SCRIPT):
            replies = {run(w, call, ts=1_000_000 + step).encode() for w in wrappers}
            assert len(replies) == 1, f"divergent replies at step {step}: {call}"

    def test_identical_abstract_state_after_script(self):
        wrappers = [make_wrapper(v, seed=i * 17 + 1, skew=i * 0.3) for i, v in enumerate(VENDORS)]
        for step, call in enumerate(SCRIPT):
            for w in wrappers:
                run(w, call, ts=1_000_000 + step)
        for index in range(32):
            values = {abstraction_function(w, index) for w in wrappers}
            assert len(values) == 1, f"abstract object {index} diverged"

    def test_oids_assigned_deterministically(self):
        wrapper = make_wrapper(MemFS)
        first = run(wrapper, CreateCall(dir_fh=ROOT_OID, name="a", sattr=Sattr()))
        second = run(wrapper, CreateCall(dir_fh=ROOT_OID, name="b", sattr=Sattr()))
        assert first.fh == make_oid(1, 1)  # lowest free index, generation 1
        assert second.fh == make_oid(2, 1)

    def test_oid_index_reused_with_bumped_generation(self):
        wrapper = make_wrapper(MemFS)
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="a", sattr=Sattr()))
        run(wrapper, RemoveCall(dir_fh=ROOT_OID, name="a"))
        reply = run(wrapper, CreateCall(dir_fh=ROOT_OID, name="b", sattr=Sattr()))
        assert reply.fh == make_oid(1, 2)


class TestAbstractBehaviour:
    @pytest.mark.parametrize("vendor", VENDORS, ids=lambda c: c.__name__)
    def test_readdir_sorted_regardless_of_vendor_order(self, vendor):
        wrapper = make_wrapper(vendor)
        for name in ("zebra", "apple", "mango"):
            run(wrapper, CreateCall(dir_fh=ROOT_OID, name=name, sattr=Sattr()))
        reply = run(wrapper, ReaddirCall(fh=ROOT_OID))
        assert [name for name, _ in reply.entries] == ["apple", "mango", "zebra"]

    @pytest.mark.parametrize("vendor", VENDORS, ids=lambda c: c.__name__)
    def test_timestamps_come_from_agreement_not_clock(self, vendor):
        wrapper = make_wrapper(vendor, skew=123.456)
        reply = run(
            wrapper,
            CreateCall(dir_fh=ROOT_OID, name="f", sattr=Sattr()),
            ts=42_000_000,
        )
        assert reply.attr.mtime == 42_000_000
        assert reply.attr.ctime == 42_000_000

    @pytest.mark.parametrize("vendor", VENDORS, ids=lambda c: c.__name__)
    def test_attr_identities_are_abstract(self, vendor):
        wrapper = make_wrapper(vendor)
        reply = run(wrapper, CreateCall(dir_fh=ROOT_OID, name="f", sattr=Sattr()))
        assert reply.attr.fsid == 1
        assert reply.attr.fileid == (1 << 32) | 1

    def test_stale_oid_rejected(self):
        wrapper = make_wrapper(MemFS)
        reply = run(wrapper, GetattrCall(fh=make_oid(5, 1)))
        assert reply.status != NFS_OK

    def test_wrong_generation_rejected(self):
        wrapper = make_wrapper(MemFS)
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="a", sattr=Sattr()))
        reply = run(wrapper, GetattrCall(fh=make_oid(1, 9)))
        assert reply.status != NFS_OK

    def test_write_then_read(self):
        wrapper = make_wrapper(Ext2FS)
        created = run(wrapper, CreateCall(dir_fh=ROOT_OID, name="f", sattr=Sattr()))
        run(wrapper, WriteCall(fh=created.fh, offset=0, data=b"payload"))
        reply = run(wrapper, ReadCall(fh=created.fh, offset=0, count=100), read_only=True)
        assert reply.data == b"payload"

    def test_read_only_cannot_mutate(self):
        wrapper = make_wrapper(MemFS)
        created = run(wrapper, CreateCall(dir_fh=ROOT_OID, name="f", sattr=Sattr()))
        reply = run(
            wrapper, WriteCall(fh=created.fh, offset=0, data=b"x"), read_only=True
        )
        assert reply.status != NFS_OK

    def test_array_exhaustion_is_nospc(self):
        wrapper = make_wrapper(MemFS, num_objects=3)
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="a", sattr=Sattr()))
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="b", sattr=Sattr()))
        reply = run(wrapper, CreateCall(dir_fh=ROOT_OID, name="c", sattr=Sattr()))
        assert reply.status == NFSERR_NOSPC

    def test_limbo_name_is_invisible(self):
        wrapper = make_wrapper(MemFS)
        wrapper.limbo_fh()  # force it into existence
        reply = run(wrapper, ReaddirCall(fh=ROOT_OID))
        assert all(name != LIMBO_NAME for name, _ in reply.entries)
        lookup = run(wrapper, LookupCall(dir_fh=ROOT_OID, name=LIMBO_NAME))
        assert lookup.status == NFSERR_NOENT


class TestModifyDiscipline:
    def test_mutations_call_modify_before_changing(self):
        wrapper = make_wrapper(MemFS)
        touched = []
        wrapper.set_modify_callback(touched.append)
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="f", sattr=Sattr()))
        assert set(touched) == {0, 1}  # the directory and the new object
        touched.clear()
        run(wrapper, WriteCall(fh=make_oid(1, 1), offset=0, data=b"z"))
        assert touched == [1]

    def test_reads_never_call_modify(self):
        wrapper = make_wrapper(MemFS)
        run(wrapper, CreateCall(dir_fh=ROOT_OID, name="f", sattr=Sattr()))
        touched = []
        wrapper.set_modify_callback(touched.append)
        run(wrapper, GetattrCall(fh=ROOT_OID), read_only=True)
        run(wrapper, ReaddirCall(fh=ROOT_OID), read_only=True)
        run(wrapper, LookupCall(dir_fh=ROOT_OID, name="f"), read_only=True)
        assert touched == []

    def test_rename_modifies_both_directories_and_object(self):
        wrapper = make_wrapper(MemFS)
        run(wrapper, MkdirCall(dir_fh=ROOT_OID, name="a", sattr=Sattr()))
        run(wrapper, MkdirCall(dir_fh=ROOT_OID, name="b", sattr=Sattr()))
        run(wrapper, CreateCall(dir_fh=make_oid(1, 1), name="f", sattr=Sattr()))
        touched = []
        wrapper.set_modify_callback(touched.append)
        run(
            wrapper,
            RenameCall(
                from_dir=make_oid(1, 1), from_name="f", to_dir=make_oid(2, 1), to_name="g"
            ),
        )
        assert {1, 2, 3}.issubset(set(touched))
