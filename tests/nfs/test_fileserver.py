"""Vendor conformance: all five file servers implement the same protocol
semantics while differing in every concrete detail the paper lists."""

import pytest

from repro.nfs.fileserver import BtrFS, Ext2FS, FFS, LogFS, MemFS
from repro.nfs.protocol import (
    NFDIR,
    NFLNK,
    NFREG,
    NFSERR_EXIST,
    NFSERR_ISDIR,
    NFSERR_NOENT,
    NFSERR_NOTDIR,
    NFSERR_NOTEMPTY,
    NFSERR_STALE,
    NFS_OK,
    Sattr,
)

VENDORS = [MemFS, Ext2FS, FFS, LogFS, BtrFS]


@pytest.fixture(params=VENDORS, ids=lambda cls: cls.__name__)
def server(request):
    return request.param(disk={}, seed=11)


class TestBasicSemantics:
    def test_root_is_directory(self, server):
        reply = server.getattr(server.root_handle())
        assert reply.ok
        assert reply.attr.ftype == NFDIR

    def test_create_lookup_read_write(self, server):
        root = server.root_handle()
        created = server.create(root, "a.txt", Sattr(mode=0o644))
        assert created.ok and created.attr.ftype == NFREG
        assert server.write(created.fh, 0, b"hello").ok
        looked = server.lookup(root, "a.txt")
        assert looked.ok
        read = server.read(looked.fh, 0, 100)
        assert read.ok and read.data == b"hello"

    def test_write_with_hole_zero_fills(self, server):
        root = server.root_handle()
        fh = server.create(root, "f", Sattr()).fh
        server.write(fh, 4, b"xy")
        read = server.read(fh, 0, 10)
        assert read.data == b"\x00\x00\x00\x00xy"

    def test_overwrite_middle(self, server):
        root = server.root_handle()
        fh = server.create(root, "f", Sattr()).fh
        server.write(fh, 0, b"abcdef")
        server.write(fh, 2, b"XY")
        assert server.read(fh, 0, 10).data == b"abXYef"

    def test_setattr_truncate_and_extend(self, server):
        root = server.root_handle()
        fh = server.create(root, "f", Sattr()).fh
        server.write(fh, 0, b"abcdef")
        server.setattr(fh, Sattr(size=3))
        assert server.read(fh, 0, 10).data == b"abc"
        server.setattr(fh, Sattr(size=5))
        assert server.read(fh, 0, 10).data == b"abc\x00\x00"

    def test_create_duplicate_is_exist(self, server):
        root = server.root_handle()
        server.create(root, "dup", Sattr())
        assert server.create(root, "dup", Sattr()).status == NFSERR_EXIST

    def test_lookup_missing_is_noent(self, server):
        assert server.lookup(server.root_handle(), "ghost").status == NFSERR_NOENT

    def test_lookup_in_file_is_notdir(self, server):
        root = server.root_handle()
        fh = server.create(root, "f", Sattr()).fh
        assert server.lookup(fh, "x").status == NFSERR_NOTDIR

    def test_read_directory_is_isdir(self, server):
        assert server.read(server.root_handle(), 0, 10).status == NFSERR_ISDIR

    def test_setattr_size_on_dir_is_isdir(self, server):
        assert server.setattr(server.root_handle(), Sattr(size=0)).status == NFSERR_ISDIR

    def test_mkdir_and_nesting(self, server):
        root = server.root_handle()
        sub = server.mkdir(root, "sub", Sattr())
        assert sub.ok and sub.attr.ftype == NFDIR
        inner = server.create(sub.fh, "inner", Sattr())
        assert inner.ok
        assert server.lookup(sub.fh, "inner").ok

    def test_remove_file(self, server):
        root = server.root_handle()
        server.create(root, "f", Sattr())
        assert server.remove(root, "f").ok
        assert server.lookup(root, "f").status == NFSERR_NOENT

    def test_remove_on_dir_is_isdir(self, server):
        root = server.root_handle()
        server.mkdir(root, "d", Sattr())
        assert server.remove(root, "d").status == NFSERR_ISDIR

    def test_rmdir_nonempty_is_notempty(self, server):
        root = server.root_handle()
        sub = server.mkdir(root, "d", Sattr())
        server.create(sub.fh, "f", Sattr())
        assert server.rmdir(root, "d").status == NFSERR_NOTEMPTY

    def test_rmdir_on_file_is_notdir(self, server):
        root = server.root_handle()
        server.create(root, "f", Sattr())
        assert server.rmdir(root, "f").status == NFSERR_NOTDIR

    def test_rmdir_empty(self, server):
        root = server.root_handle()
        server.mkdir(root, "d", Sattr())
        assert server.rmdir(root, "d").ok

    def test_rename_within_dir(self, server):
        root = server.root_handle()
        fh = server.create(root, "old", Sattr()).fh
        server.write(fh, 0, b"content")
        assert server.rename(root, "old", root, "new").ok
        assert server.lookup(root, "old").status == NFSERR_NOENT
        moved = server.lookup(root, "new")
        assert moved.ok
        assert server.read(moved.fh, 0, 10).data == b"content"

    def test_rename_across_dirs(self, server):
        root = server.root_handle()
        a = server.mkdir(root, "a", Sattr()).fh
        b = server.mkdir(root, "b", Sattr()).fh
        server.create(a, "f", Sattr())
        assert server.rename(a, "f", b, "g").ok
        assert server.lookup(b, "g").ok

    def test_rename_replaces_file(self, server):
        root = server.root_handle()
        src = server.create(root, "src", Sattr()).fh
        server.write(src, 0, b"SRC")
        server.create(root, "dst", Sattr())
        assert server.rename(root, "src", root, "dst").ok
        assert server.read(server.lookup(root, "dst").fh, 0, 10).data == b"SRC"

    def test_rename_missing_source_is_noent(self, server):
        root = server.root_handle()
        assert server.rename(root, "nope", root, "x").status == NFSERR_NOENT

    def test_symlink_and_readlink(self, server):
        root = server.root_handle()
        made = server.symlink(root, "l", "/some/target", Sattr())
        assert made.ok
        fh = server.lookup(root, "l").fh
        reply = server.readlink(fh)
        assert reply.ok and reply.target == "/some/target"

    def test_readdir_contents(self, server):
        root = server.root_handle()
        for name in ("c", "a", "b"):
            server.create(root, name, Sattr())
        reply = server.readdir(root)
        assert reply.ok
        assert {name for name, _fh in reply.entries} == {"a", "b", "c"}

    def test_bad_handle_is_stale(self, server):
        assert server.getattr(b"garbage-handle").status == NFSERR_STALE

    def test_invalid_names_rejected(self, server):
        root = server.root_handle()
        for bad in ("", ".", "..", "a/b", "x" * 300):
            assert not server.create(root, bad, Sattr()).ok

    def test_statfs(self, server):
        assert server.statfs(server.root_handle()).ok

    def test_stale_after_remove(self, server):
        root = server.root_handle()
        fh = server.create(root, "f", Sattr()).fh
        server.remove(root, "f")
        assert server.getattr(fh).status == NFSERR_STALE


class TestPersistence:
    @pytest.mark.parametrize("vendor", VENDORS, ids=lambda c: c.__name__)
    def test_state_survives_reboot(self, vendor):
        disk = {}
        server = vendor(disk=disk, seed=5)
        root = server.root_handle()
        fh = server.create(root, "keep.txt", Sattr()).fh
        server.write(fh, 0, b"persistent")
        reborn = vendor(disk=disk, seed=99)
        looked = reborn.lookup(reborn.root_handle(), "keep.txt")
        assert looked.ok
        assert reborn.read(looked.fh, 0, 20).data == b"persistent"

    def test_logfs_handles_are_volatile_across_reboot(self):
        disk = {}
        server = LogFS(disk=disk, seed=5)
        fh = server.create(server.root_handle(), "f", Sattr()).fh
        reborn = LogFS(disk=disk, seed=5)
        assert reborn.getattr(fh).status == NFSERR_STALE  # the 3.4 problem

    def test_memfs_handles_survive_reboot(self):
        disk = {}
        server = MemFS(disk=disk, seed=5)
        fh = server.create(server.root_handle(), "f", Sattr()).fh
        reborn = MemFS(disk=disk, seed=5)
        assert reborn.getattr(fh).ok


class TestVendorDivergence:
    """The concrete differences the wrapper exists to hide."""

    def _populate(self, server):
        root = server.root_handle()
        for name in ("zebra", "apple", "mango", "kiwi"):
            server.create(root, name, Sattr())
        return [name for name, _ in server.readdir(root).entries]

    def test_readdir_orders_differ(self):
        orders = {
            cls.__name__: tuple(self._populate(cls(disk={}, seed=7)))
            for cls in VENDORS
        }
        assert len(set(orders.values())) >= 3, orders

    def test_fsids_are_nondeterministic(self):
        fsids = {cls(disk={}, seed=s).fsid for cls in VENDORS for s in (1, 2)}
        assert len(fsids) == 2 * len(VENDORS)

    def test_handles_differ_across_vendors(self):
        handles = set()
        for cls in VENDORS:
            server = cls(disk={}, seed=3)
            handles.add(server.create(server.root_handle(), "same", Sattr()).fh)
        assert len(handles) == len(VENDORS)

    def test_timestamp_granularities_differ(self):
        clock = lambda: 123.4567894
        stamps = set()
        for cls in VENDORS:
            server = cls(disk={}, seed=3, clock=clock)
            reply = server.create(server.root_handle(), "f", Sattr())
            stamps.add(reply.attr.mtime)
        assert len(stamps) >= 2  # second vs micro vs 10-micro granularity

    def test_inode_reuse_only_in_ext2(self):
        ext2 = Ext2FS(disk={}, seed=3)
        root = ext2.root_handle()
        first = ext2.create(root, "a", Sattr()).attr.fileid
        ext2.remove(root, "a")
        second = ext2.create(root, "b", Sattr()).attr.fileid
        assert first == second  # ext2 reuses the inode

        mem = MemFS(disk={}, seed=3)
        root = mem.root_handle()
        first = mem.create(root, "a", Sattr()).attr.fileid
        mem.remove(root, "a")
        second = mem.create(root, "b", Sattr()).attr.fileid
        assert first != second


class TestAging:
    @pytest.mark.parametrize("vendor", VENDORS, ids=lambda c: c.__name__)
    def test_leak_triggers_crash_then_reboot_heals(self, vendor):
        from repro.util.errors import FaultInjected

        disk = {}
        server = vendor(disk=disk, seed=5, aging_threshold=2000)
        root = server.root_handle()
        fh = server.create(root, "f", Sattr()).fh
        with pytest.raises(FaultInjected):
            for i in range(10000):
                server.write(fh, 0, b"x" * 64)
        reborn = vendor(disk=disk, seed=5, aging_threshold=2000)
        assert reborn.lookup(reborn.root_handle(), "f").ok
