"""Property-based conformance: for *any* operation sequence, wrappers over
all four vendors produce byte-identical replies and abstract states.

This is the paper's determinism requirement tested adversarially: hypothesis
generates random scripts of file-system operations (including invalid ones —
error paths must also agree) and we run the same script with the same agreed
timestamps through four wrappers, one per vendor.
"""

from typing import List

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.nfs.conversion import abstraction_function
from repro.nfs.fileserver import BtrFS, Ext2FS, FFS, LogFS, MemFS
from repro.nfs.protocol import (
    CreateCall,
    GetattrCall,
    LookupCall,
    MkdirCall,
    NfsReply,
    ReadCall,
    ReaddirCall,
    RemoveCall,
    RenameCall,
    RmdirCall,
    Sattr,
    SetattrCall,
    SymlinkCall,
    WriteCall,
)
from repro.nfs.spec import NFSAbstractSpec, ROOT_OID, make_oid
from repro.nfs.wrapper import NFSConformanceWrapper

VENDORS = [MemFS, Ext2FS, FFS, LogFS, BtrFS]
N_OBJECTS = 16

# Small universes make collisions (and thus interesting error paths) likely.
names = st.sampled_from(["a", "b", "c", "dir1", "f.txt"])
oids = st.builds(
    make_oid, st.integers(0, N_OBJECTS - 1), st.integers(0, 3)
) | st.just(ROOT_OID)
payloads = st.binary(max_size=64)
offsets = st.integers(0, 128)


def _sattrs() -> st.SearchStrategy[Sattr]:
    return st.builds(
        Sattr,
        mode=st.none() | st.integers(0, 0o777),
        size=st.none() | st.integers(0, 64),
        mtime=st.none() | st.integers(0, 2**31),
    )


calls = st.one_of(
    st.builds(MkdirCall, dir_fh=oids, name=names, sattr=_sattrs()),
    st.builds(CreateCall, dir_fh=oids, name=names, sattr=_sattrs()),
    st.builds(WriteCall, fh=oids, offset=offsets, data=payloads),
    st.builds(SetattrCall, fh=oids, sattr=_sattrs()),
    st.builds(LookupCall, dir_fh=oids, name=names),
    st.builds(GetattrCall, fh=oids),
    st.builds(ReadCall, fh=oids, offset=offsets, count=st.integers(0, 128)),
    st.builds(ReaddirCall, fh=oids),
    st.builds(RemoveCall, dir_fh=oids, name=names),
    st.builds(RmdirCall, dir_fh=oids, name=names),
    st.builds(
        RenameCall, from_dir=oids, from_name=names, to_dir=oids, to_name=names
    ),
    st.builds(
        SymlinkCall, dir_fh=oids, name=names, target=st.just("/t"), sattr=_sattrs()
    ),
)


def fresh_wrappers() -> List[NFSConformanceWrapper]:
    return [
        NFSConformanceWrapper(
            vendor(disk={}, seed=31 * i + 7, clock=lambda: 9.0, clock_skew=0.1 * i),
            NFSAbstractSpec(N_OBJECTS),
            disk={},
        )
        for i, vendor in enumerate(VENDORS)
    ]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=st.lists(calls, min_size=1, max_size=15))
def test_vendors_agree_on_any_script(script):
    wrappers = fresh_wrappers()
    for step, call in enumerate(script):
        op = call.encode()
        replies = {
            wrapper.execute(op, "C0", 1_000_000 + step * 1000) for wrapper in wrappers
        }
        assert len(replies) == 1, (
            f"replies diverged at step {step} ({type(call).__name__}): "
            f"{[NfsReply.decode(r).status for r in replies]}"
        )
    for index in range(N_OBJECTS):
        values = {abstraction_function(wrapper, index) for wrapper in wrappers}
        assert len(values) == 1, f"abstract object {index} diverged"


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(calls, min_size=1, max_size=12))
def test_transplant_after_any_script(script):
    """After any script, the full abstract state extracted from one vendor
    installs losslessly into a fresh wrapper over another vendor."""
    from repro.nfs.conversion import inverse_abstraction_function

    source = NFSConformanceWrapper(
        MemFS(disk={}, seed=5, clock=lambda: 9.0), NFSAbstractSpec(N_OBJECTS), disk={}
    )
    for step, call in enumerate(script):
        source.execute(call.encode(), "C0", 1_000_000 + step * 1000)
    state = [abstraction_function(source, index) for index in range(N_OBJECTS)]

    target = NFSConformanceWrapper(
        LogFS(disk={}, seed=99, clock=lambda: 1.0), NFSAbstractSpec(N_OBJECTS), disk={}
    )
    spec = NFSAbstractSpec(N_OBJECTS)
    delta = {
        index: blob
        for index, blob in enumerate(state)
        if blob != spec.initial_object(index)
    }
    inverse_abstraction_function(target, delta)
    assert [abstraction_function(target, index) for index in range(N_OBJECTS)] == state


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=st.lists(calls, min_size=1, max_size=12))
def test_rep_reconstruction_after_any_script(script):
    """Saving the rep, rebooting the implementation from disk, and
    reconstructing must preserve the abstract state exactly (section 3.4),
    even for LogFS whose handles all go stale."""
    disk: dict = {}
    impl = LogFS(disk=disk, seed=13, clock=lambda: 9.0)
    wrapper = NFSConformanceWrapper(impl, NFSAbstractSpec(N_OBJECTS), disk=disk)
    for step, call in enumerate(script):
        wrapper.execute(call.encode(), "C0", 1_000_000 + step * 1000)
    state = [abstraction_function(wrapper, index) for index in range(N_OBJECTS)]

    wrapper.save_for_recovery()
    reborn_impl = LogFS(disk=disk, seed=13, clock=lambda: 9.0)
    reborn = NFSConformanceWrapper(reborn_impl, NFSAbstractSpec(N_OBJECTS), disk=disk)
    assert [abstraction_function(reborn, index) for index in range(N_OBJECTS)] == state
