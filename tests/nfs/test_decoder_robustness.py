"""Decoder robustness: untrusted bytes must raise cleanly, never hang or
crash the process (clients can send arbitrary operation payloads)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nfs.protocol import NfsCall, NfsReply
from repro.nfs.spec import AbstractObject
from repro.oodb.spec import AbstractDBObject, OODBReply
from repro.util.xdr import XdrError


@settings(max_examples=200)
@given(blob=st.binary(max_size=200))
def test_nfs_call_decode_never_crashes(blob):
    try:
        NfsCall.decode(blob)
    except (XdrError, ValueError):
        pass  # clean rejection


@settings(max_examples=200)
@given(blob=st.binary(max_size=200))
def test_nfs_reply_decode_never_crashes(blob):
    try:
        NfsReply.decode(blob)
    except (XdrError, ValueError):
        pass


@settings(max_examples=200)
@given(blob=st.binary(max_size=200))
def test_abstract_object_decode_never_crashes(blob):
    try:
        AbstractObject.decode(blob)
    except (XdrError, ValueError):
        pass


@settings(max_examples=200)
@given(blob=st.binary(max_size=200))
def test_oodb_object_decode_never_crashes(blob):
    try:
        AbstractDBObject.decode(blob)
    except (XdrError, ValueError):
        pass


@settings(max_examples=100)
@given(blob=st.binary(max_size=200))
def test_oodb_reply_decode_never_crashes(blob):
    try:
        OODBReply.decode(blob)
    except (XdrError, ValueError):
        pass


def test_wrapper_rejects_garbage_ops():
    """A malicious client's garbage op gets an error reply, not a replica
    crash."""
    from repro.nfs.fileserver import MemFS
    from repro.nfs.spec import NFSAbstractSpec
    from repro.nfs.wrapper import NFSConformanceWrapper
    from repro.nfs.protocol import NFSERR_IO

    wrapper = NFSConformanceWrapper(MemFS(disk={}), NFSAbstractSpec(8), disk={})
    for garbage in (b"", b"\xff" * 40, b"\x00\x00\x00\x63" + b"junk"):
        reply = NfsReply.decode(wrapper.execute(garbage, "C0", 0))
        assert reply.status == NFSERR_IO


def test_oodb_wrapper_rejects_garbage_ops():
    from repro.oodb.db import ThorDB
    from repro.oodb.spec import OODBAbstractSpec, OODB_BADOP
    from repro.oodb.wrapper import OODBConformanceWrapper

    wrapper = OODBConformanceWrapper(ThorDB(disk={}), OODBAbstractSpec(8), disk={})
    for garbage in (b"", b"\xff" * 16):
        reply = OODBReply.decode(wrapper.execute(garbage, "C0", 0))
        assert reply.status == OODB_BADOP


def test_truncated_valid_prefix_rejected():
    from repro.nfs.protocol import WriteCall

    blob = WriteCall(fh=b"h" * 8, offset=0, data=b"payload").encode()
    for cut in range(1, len(blob)):
        try:
            NfsCall.decode(blob[:cut])
        except (XdrError, ValueError):
            continue
        pytest.fail(f"truncation at {cut} decoded successfully")
