"""End-to-end replicated file service (E2/E6): heterogeneous replicas,
fail-over, state transfer, proactive recovery, corruption healing."""

import pytest

from repro.bft.config import BFTConfig
from repro.nfs.client import NFSClient, NFSError
from repro.nfs.fileserver import Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment

HETERO = {
    "R0": lambda disk: MemFS(disk=disk, seed=1, clock_skew=0.5),
    "R1": lambda disk: Ext2FS(disk=disk, seed=2, clock_skew=-0.3),
    "R2": lambda disk: FFS(disk=disk, seed=3, clock_skew=0.8),
    "R3": lambda disk: LogFS(disk=disk, seed=4, clock_skew=0.1),
}


def hetero_deployment(**kwargs):
    kwargs.setdefault("config", BFTConfig(checkpoint_interval=8, log_window=16))
    kwargs.setdefault("num_objects", 64)
    return NFSDeployment(dict(HETERO), **kwargs)


def roots(dep):
    return {
        rid: dep.cluster.service(rid).current_node(0, 0)[1] for rid in dep.cluster.hosts
    }


def assert_converged(dep):
    dep.sim.run_for(1.0)
    values = roots(dep)
    assert len(set(values.values())) == 1, values


class TestHeterogeneousService:
    def test_basic_file_lifecycle(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/docs")
        fs.write_file("/docs/a.txt", b"alpha")
        assert fs.read_file("/docs/a.txt") == b"alpha"
        assert fs.listdir("/") == ["docs"]
        fs.rename("/docs/a.txt", "/docs/b.txt")
        assert fs.listdir("/docs") == ["b.txt"]
        fs.unlink("/docs/b.txt")
        fs.rmdir("/docs")
        assert fs.listdir("/") == []
        assert_converged(dep)

    def test_replies_identical_enough_for_weak_quorum(self):
        """f+1 matching replies require byte-identical results from replicas
        running four different implementations."""
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/d")
        for i in range(8):
            fs.write_file(f"/d/f{i}", bytes([i]) * 100)
        listing = fs.listdir("/d")
        assert listing == sorted(listing)
        client = dep.cluster.client("C0")
        assert client.counters.get("replies_accepted") > 0

    def test_stat_fields_are_abstract(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.write_file("/f", b"12345")
        attr = fs.stat("/f")
        assert attr.fsid == 1
        assert attr.size == 5
        assert attr.mtime > 0

    def test_error_statuses_agree(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        with pytest.raises(NFSError):
            fs.read_file("/missing")
        fs.mkdir("/d")
        fs.write_file("/d/x", b"1")
        with pytest.raises(NFSError):
            fs.rmdir("/d")  # not empty

    def test_symlinks(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.write_file("/target", b"t")
        fs.symlink("/target", "/ln")
        assert fs.readlink("/ln") == "/target"


class TestFailuresDuringService:
    def test_replica_crash_is_masked(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/d")
        dep.cluster.crash("R2")
        for i in range(6):
            fs.write_file(f"/d/f{i}", b"x" * 50)
        assert len(fs.listdir("/d")) == 6

    def test_primary_crash_is_masked(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/d")
        dep.cluster.crash("R0")
        fs.write_file("/d/after-failover", b"ok")
        assert fs.read_file("/d/after-failover") == b"ok"

    def test_lagging_heterogeneous_replica_catches_up(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/d")
        dep.cluster.crash("R3")
        for i in range(30):
            fs.write_file(f"/d/f{i % 5}", bytes([i]) * 40)
        dep.cluster.restart("R3")
        dep.sim.run_for(5.0)
        r3 = dep.cluster.replica("R3")
        assert r3.counters.get("state_transfers_completed") >= 1
        assert_converged(dep)


class TestProactiveRecovery:
    @pytest.mark.parametrize("victim", ["R0", "R1", "R2", "R3"])
    def test_each_vendor_recovers(self, victim):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/w")
        for i in range(10):
            fs.write_file(f"/w/f{i}", b"d" * (20 + i))
        dep.sim.run_for(1.0)
        host = dep.cluster.hosts[victim]
        assert host.recover_now()
        dep.sim.run_for(5.0)
        assert host.replica.counters.get("recoveries_completed") == 1
        assert_converged(dep)
        fs.write_file("/w/post", b"post")
        assert fs.read_file("/w/post") == b"post"

    def test_disk_corruption_healed_by_recovery(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/w")
        fs.write_file("/w/precious", b"SAFE" * 50)
        dep.sim.run_for(1.0)
        # Flip bits in R0's (MemFS) persistent node table.
        nodes = dep.disks["R0"]["memfs:nodes"]
        victim = next(fid for fid, n in nodes.items() if n.get("data"))
        nodes[victim]["data"] = b"EVIL"
        host = dep.cluster.hosts["R0"]
        host.recover_now()
        dep.sim.run_for(5.0)
        assert host.replica.counters.get("objects_fetched") >= 1
        assert_converged(dep)
        assert fs.read_file("/w/precious") == b"SAFE" * 50

    def test_rolling_recovery_all_replicas(self):
        dep = hetero_deployment()
        fs = NFSClient(dep.relay("C0"))
        fs.mkdir("/w")
        for i in range(8):
            fs.write_file(f"/w/f{i}", bytes([i]) * 30)
        dep.sim.run_for(1.0)
        for victim in ("R0", "R1", "R2", "R3"):
            host = dep.cluster.hosts[victim]
            assert host.recover_now()
            dep.sim.run_for(4.0)
            assert host.replica.counters.get("recoveries_completed") >= 1
        assert_converged(dep)
        assert fs.read_file("/w/f3") == bytes([3]) * 30
