"""NFS protocol structures: encodings, roundtrips, read-only classification."""

import pytest
from hypothesis import given, strategies as st

from repro.nfs.protocol import (
    MAX_NAME_LEN,
    NFS_OK,
    NFSERR_NOENT,
    Fattr,
    GetattrCall,
    LookupCall,
    MkdirCall,
    NfsCall,
    NfsReply,
    ReadCall,
    ReaddirCall,
    RemoveCall,
    RenameCall,
    Sattr,
    SetattrCall,
    SymlinkCall,
    WriteCall,
    error_reply,
)
from repro.util.xdr import XdrDecoder, XdrEncoder


class TestFattr:
    def test_roundtrip(self):
        attr = Fattr(ftype=1, mode=0o644, nlink=1, uid=7, gid=8, size=123,
                     fsid=9, fileid=10, atime=11, mtime=12, ctime=13)
        enc = XdrEncoder()
        attr.pack(enc)
        assert Fattr.unpack(XdrDecoder(enc.getvalue())) == attr


class TestSattr:
    def test_roundtrip_all_set(self):
        sattr = Sattr(mode=0o600, uid=1, gid=2, size=3, atime=4, mtime=5)
        enc = XdrEncoder()
        sattr.pack(enc)
        assert Sattr.unpack(XdrDecoder(enc.getvalue())) == sattr

    def test_roundtrip_none_fields(self):
        sattr = Sattr(size=100)
        enc = XdrEncoder()
        sattr.pack(enc)
        out = Sattr.unpack(XdrDecoder(enc.getvalue()))
        assert out.size == 100
        assert out.mode is None and out.mtime is None


class TestCalls:
    CASES = [
        GetattrCall(fh=b"abc"),
        SetattrCall(fh=b"h", sattr=Sattr(mode=0o755)),
        LookupCall(dir_fh=b"d", name="file.txt"),
        ReadCall(fh=b"f", offset=100, count=512),
        WriteCall(fh=b"f", offset=8, data=b"\x01\x02"),
        MkdirCall(dir_fh=b"d", name="sub", sattr=Sattr()),
        RemoveCall(dir_fh=b"d", name="gone"),
        RenameCall(from_dir=b"a", from_name="x", to_dir=b"b", to_name="y"),
        SymlinkCall(dir_fh=b"d", name="l", target="/t", sattr=Sattr()),
        ReaddirCall(fh=b"d"),
    ]

    @pytest.mark.parametrize("call", CASES, ids=lambda c: type(c).__name__)
    def test_roundtrip(self, call):
        decoded = NfsCall.decode(call.encode())
        assert decoded == call

    def test_unknown_proc_rejected(self):
        blob = XdrEncoder().pack_u32(9999).getvalue()
        with pytest.raises(ValueError):
            NfsCall.decode(blob)

    def test_read_only_classification(self):
        assert GetattrCall(fh=b"x").is_read_only
        assert ReadCall(fh=b"x").is_read_only
        assert ReaddirCall(fh=b"x").is_read_only
        assert LookupCall(dir_fh=b"x", name="n").is_read_only
        assert not WriteCall(fh=b"x").is_read_only
        assert not RemoveCall(dir_fh=b"x", name="n").is_read_only
        assert not SetattrCall(fh=b"x").is_read_only


class TestReply:
    def test_roundtrip_full(self):
        reply = NfsReply(
            status=NFS_OK,
            fh=b"handle",
            attr=Fattr(ftype=2, fileid=42),
            data=b"payload",
            target="/link/target",
            entries=[("a", b"h1"), ("b", b"h2")],
        )
        assert NfsReply.decode(reply.encode()) == reply

    def test_error_reply(self):
        reply = error_reply(NFSERR_NOENT)
        out = NfsReply.decode(reply.encode())
        assert out.status == NFSERR_NOENT
        assert not out.ok


@given(st.binary(max_size=40), st.integers(0, 2**40), st.binary(max_size=100))
def test_write_call_roundtrip_property(fh, offset, data):
    call = WriteCall(fh=fh, offset=offset, data=data)
    assert NfsCall.decode(call.encode()) == call
