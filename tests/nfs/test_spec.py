"""Abstract specification: oids, object encodings, initial state."""

import pytest
from hypothesis import given, strategies as st

from repro.nfs.protocol import NFDIR, NFLNK, NFNON, NFREG
from repro.nfs.spec import (
    AbstractMeta,
    AbstractObject,
    NFSAbstractSpec,
    ROOT_OID,
    make_oid,
    null_object,
    parse_oid,
)


class TestOid:
    def test_roundtrip(self):
        assert parse_oid(make_oid(42, 7)) == (42, 7)

    def test_root_oid(self):
        assert parse_oid(ROOT_OID) == (0, 0)

    def test_oid_is_eight_bytes(self):
        assert len(make_oid(1, 1)) == 8

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, index, generation):
        assert parse_oid(make_oid(index, generation)) == (index, generation)


class TestAbstractObject:
    def test_null_roundtrip(self):
        obj = null_object(5)
        out = AbstractObject.decode(obj.encode())
        assert out.ftype == NFNON
        assert out.generation == 5

    def test_file_roundtrip(self):
        obj = AbstractObject(
            ftype=NFREG,
            generation=3,
            meta=AbstractMeta(mode=0o644, uid=1, gid=2, mtime=10, ctime=11),
            data=b"contents",
        )
        assert AbstractObject.decode(obj.encode()) == obj

    def test_directory_entries_are_canonically_sorted(self):
        a = AbstractObject(
            ftype=NFDIR,
            generation=1,
            entries=[("zeta", make_oid(2, 1)), ("alpha", make_oid(3, 1))],
        )
        b = AbstractObject(
            ftype=NFDIR,
            generation=1,
            entries=[("alpha", make_oid(3, 1)), ("zeta", make_oid(2, 1))],
        )
        assert a.encode() == b.encode()  # encoding sorts lexicographically
        decoded = AbstractObject.decode(a.encode())
        assert [name for name, _ in decoded.entries] == ["alpha", "zeta"]

    def test_symlink_roundtrip(self):
        obj = AbstractObject(ftype=NFLNK, generation=2, target="/a/b")
        assert AbstractObject.decode(obj.encode()) == obj

    def test_distinct_generations_encode_differently(self):
        assert null_object(1).encode() != null_object(2).encode()


class TestSpec:
    def test_initial_root_is_empty_dir(self):
        spec = NFSAbstractSpec(num_objects=16)
        root = AbstractObject.decode(spec.initial_object(0))
        assert root.ftype == NFDIR
        assert root.entries == []
        assert root.generation == 0

    def test_initial_non_root_is_null(self):
        spec = NFSAbstractSpec(num_objects=16)
        for index in (1, 7, 15):
            obj = AbstractObject.decode(spec.initial_object(index))
            assert obj.ftype == NFNON

    def test_initial_state_is_identical_across_instances(self):
        a = NFSAbstractSpec(num_objects=8)
        b = NFSAbstractSpec(num_objects=8)
        assert [a.initial_object(i) for i in range(8)] == [
            b.initial_object(i) for i in range(8)
        ]

    def test_validate_rejects_garbage(self):
        spec = NFSAbstractSpec(num_objects=8)
        assert not spec.validate_object(1, b"\xff\xff")

    def test_validate_rejects_non_dir_root(self):
        spec = NFSAbstractSpec(num_objects=8)
        file_obj = AbstractObject(ftype=NFREG, generation=0)
        assert not spec.validate_object(0, file_obj.encode())

    def test_validate_rejects_out_of_range_reference(self):
        spec = NFSAbstractSpec(num_objects=8)
        dir_obj = AbstractObject(
            ftype=NFDIR, generation=0, entries=[("x", make_oid(99, 1))]
        )
        assert not spec.validate_object(0, dir_obj.encode())

    def test_zero_objects_rejected(self):
        with pytest.raises(ValueError):
            NFSAbstractSpec(num_objects=0)
