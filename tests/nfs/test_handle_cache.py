"""Client lookup/handle caching: fewer protocol calls, stale-safe."""

import pytest

from repro.net.simulator import Simulator
from repro.nfs.client import NFSClient
from repro.nfs.direct import DirectTransport
from repro.nfs.fileserver import MemFS


def cached_client(seed=1):
    sim = Simulator(seed=0)
    transport = DirectTransport(MemFS(disk={}, seed=seed), sim=sim)
    fs = NFSClient(transport, root_fh=transport.impl.root_handle(), cache_handles=True)
    return fs, transport


def test_repeated_reads_skip_lookups():
    fs, transport = cached_client()
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    fs.write_file("/a/b/f", b"data")
    fs.read_file("/a/b/f")
    calls_first = transport.counters.get("nfs_calls")
    fs.read_file("/a/b/f")
    calls_second = transport.counters.get("nfs_calls") - calls_first
    # The second read needs no LOOKUP walk at all.
    assert calls_second <= 2


def test_cache_less_client_walks_every_time():
    sim = Simulator(seed=0)
    transport = DirectTransport(MemFS(disk={}, seed=1), sim=sim)
    fs = NFSClient(transport, root_fh=transport.impl.root_handle())
    fs.mkdir("/a")
    fs.write_file("/a/f", b"x")
    fs.read_file("/a/f")
    before = transport.counters.get("nfs_calls")
    fs.read_file("/a/f")
    assert transport.counters.get("nfs_calls") - before >= 3  # lookups + read


def test_stale_handle_recovered_transparently():
    fs, transport = cached_client()
    fs.write_file("/f", b"one")
    fs.read_file("/f")  # cache /f
    # Replace the file behind the cache: unlink+create gives a NEW handle.
    impl = transport.impl
    root = impl.root_handle()
    from repro.nfs.protocol import Sattr

    impl.remove(root, "f")
    reply = impl.create(root, "f", Sattr())
    impl.write(reply.fh, 0, b"two")
    # The cached handle is stale; the client must silently re-walk.
    assert fs.read_file("/f") == b"two"


def test_rename_invalidates_old_and_new_paths():
    fs, _transport = cached_client()
    fs.mkdir("/d")
    fs.write_file("/d/old", b"v")
    fs.read_file("/d/old")
    fs.rename("/d/old", "/d/new")
    assert not fs.exists("/d/old")
    assert fs.read_file("/d/new") == b"v"


def test_unlink_invalidates_subtree():
    fs, _transport = cached_client()
    fs.mkdir("/sub")
    fs.write_file("/sub/f", b"x")
    fs.read_file("/sub/f")
    fs.unlink("/sub/f")
    fs.rmdir("/sub")
    assert not fs.exists("/sub")
    fs.mkdir("/sub")  # recreate: the stale cached dir handle must not leak
    fs.write_file("/sub/f", b"fresh")
    assert fs.read_file("/sub/f") == b"fresh"


def test_cached_client_correct_over_replicated_service():
    from repro.bft.config import BFTConfig
    from repro.nfs.fileserver import Ext2FS, FFS, LogFS
    from repro.nfs.relay import NFSDeployment

    dep = NFSDeployment(
        {
            "R0": lambda disk: MemFS(disk=disk, seed=1),
            "R1": lambda disk: Ext2FS(disk=disk, seed=2),
            "R2": lambda disk: FFS(disk=disk, seed=3),
            "R3": lambda disk: LogFS(disk=disk, seed=4),
        },
        num_objects=64,
        config=BFTConfig(checkpoint_interval=8, log_window=16),
    )
    fs = NFSClient(dep.relay("C0"), cache_handles=True)
    fs.mkdir("/w")
    for i in range(8):
        fs.write_file(f"/w/f{i}", bytes([i]) * 20)
    for i in range(8):
        assert fs.read_file(f"/w/f{i}") == bytes([i]) * 20
    fs.rename("/w/f0", "/w/g0")
    assert fs.read_file("/w/g0") == bytes([0]) * 20
