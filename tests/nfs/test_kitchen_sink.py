"""Everything at once: heterogeneous vendors, packet loss, a Byzantine
replica, proactive recovery rotation, concurrent clients, deep trees — and
at the end, byte-identical abstract states and a clean audit."""

import pytest

from repro.bft.config import BFTConfig
from repro.faults import make_result_corruptor
from repro.net.network import NetworkConfig
from repro.nfs.audit import audit_wrapper, diff_wrappers
from repro.nfs.client import NFSClient
from repro.nfs.fileserver import Ext2FS, FFS, LogFS, MemFS
from repro.nfs.relay import NFSDeployment


def test_kitchen_sink():
    deployment = NFSDeployment(
        {
            "R0": lambda disk: MemFS(disk=disk, seed=1, clock_skew=0.5),
            "R1": lambda disk: Ext2FS(disk=disk, seed=2, clock_skew=-0.3),
            "R2": lambda disk: FFS(disk=disk, seed=3, clock_skew=0.8),
            "R3": lambda disk: LogFS(disk=disk, seed=4, clock_skew=0.1),
        },
        num_objects=128,
        config=BFTConfig(
            checkpoint_interval=8, log_window=16, recovery_period=4.0
        ),
        net_config=NetworkConfig(delay=0.0005, jitter=0.0005, drop_rate=0.02),
        seed=9,
    )
    deployment.cluster.start_proactive_recovery()
    make_result_corruptor(deployment.cluster.replica("R2"))  # f = 1 Byzantine

    alice = NFSClient(deployment.relay("alice"), cache_handles=True)
    bob = NFSClient(deployment.relay("bob"))

    alice.mkdir("/home")
    alice.mkdir("/home/alice")
    bob.mkdir("/home/bob")

    for i in range(10):
        alice.write_file(f"/home/alice/doc{i}.txt", f"alice {i}".encode() * 10)
        bob.write_file(f"/home/bob/note{i}.md", f"bob {i}".encode() * 5)
        if i % 3 == 0:
            deployment.sim.run_for(0.5)

    # Cross-visibility and content integrity despite the corruptor.
    assert bob.read_file("/home/alice/doc3.txt") == b"alice 3" * 10
    assert alice.read_file("/home/bob/note7.md") == b"bob 7" * 5

    # Some churn.
    alice.rename("/home/alice/doc0.txt", "/home/bob/stolen.txt")
    bob.unlink("/home/bob/note9.md")
    alice.symlink("/home/bob/stolen.txt", "/home/alice/link")
    assert alice.readlink("/home/alice/link") == "/home/bob/stolen.txt"

    # Let recoveries run with traffic ongoing.
    for i in range(10, 20):
        alice.write_file(f"/home/alice/doc{i}.txt", bytes([i]) * 100)
    deployment.sim.run_for(10.0)

    recoveries = sum(
        host.replica.counters.get("recoveries_completed")
        for host in deployment.cluster.hosts.values()
    )
    assert recoveries >= 2

    # Final verdict: the three honest replicas agree byte-for-byte; R2's
    # execute() corrupts replies but (this corruptor) not its state.
    honest = ["R0", "R1", "R3"]
    for rid in honest:
        if deployment.cluster.hosts[rid].replica.recovering:
            continue
        report = audit_wrapper(deployment.wrapper(rid))
        assert report.ok, (rid, report.problems)
    settled = [
        rid for rid in honest if not deployment.cluster.hosts[rid].replica.recovering
    ]
    assert len(settled) >= 2
    first, *rest = settled
    for other in rest:
        assert diff_wrappers(deployment.wrapper(first), deployment.wrapper(other)) == []

    # And the files still read back.
    assert alice.read_file("/home/bob/stolen.txt") == b"alice 0" * 10
    assert sorted(alice.listdir("/home")) == ["alice", "bob"]
